package cachemodel

import (
	"math"

	"repro/internal/arch"
	"repro/internal/kpl"
)

// Access summarizes how a kernel uses one buffer during one launch.
type Access struct {
	Pattern  kpl.AccessPattern
	Accesses float64 // dynamic load+store count against the buffer
	Elems    int     // distinct elements addressed (working set, in elements)
	ElemSize int     // bytes per element
	Stride   int     // elements between consecutive accesses (Strided only)
}

// WorkingSetBytes returns the bytes the access stream touches.
func (a Access) WorkingSetBytes() float64 {
	return float64(a.Elems) * float64(a.ElemSize)
}

// MissRate predicts the probability that one access misses in the cache of
// GPU g. The components:
//
//   - compulsory misses: a streaming pass over W bytes must fetch W/line
//     lines, so even a perfectly cached pass misses elemSize/line of the
//     time (amortized over the line);
//   - capacity/reuse: when the access stream revisits elements (reuse factor
//     r = accesses/elems > 1), revisits hit only while the working set fits;
//     the fraction that spills is (W − C_eff)/W;
//   - conflict: associativity leaves a residual conflict probability modeled
//     by shrinking the effective capacity to C·(1 − 1/(assoc+1)).
func MissRate(g *arch.GPU, a Access) float64 {
	if a.Accesses <= 0 || a.Elems <= 0 || a.ElemSize <= 0 {
		return 0
	}
	line := float64(g.LineBytes)
	capacity := float64(g.L2KiB) * 1024 * (1 - 1/float64(g.Assoc+1))
	ws := a.WorkingSetBytes()

	// Fraction of the working set that cannot be retained for reuse.
	spill := 0.0
	if ws > capacity {
		spill = (ws - capacity) / ws
	}

	switch a.Pattern {
	case kpl.AccessBroadcast:
		// Every thread reads the same small region: after the first touch of
		// each line, everything hits.
		lines := math.Ceil(ws / line)
		return clamp01(lines / a.Accesses)

	case kpl.AccessSeq:
		compulsory := float64(a.ElemSize) / line
		reuse := a.Accesses / float64(a.Elems)
		if reuse <= 1 {
			return clamp01(compulsory)
		}
		// First pass pays compulsory; spilled revisits refetch their lines.
		first := 1 / reuse
		return clamp01(compulsory * (first + (1-first)*spill))

	case kpl.AccessStrided:
		stride := a.Stride
		if stride < 1 {
			stride = 1
		}
		// Each access lands stride·elemSize bytes from the previous one: once
		// the stride exceeds the line, every access opens a new line.
		perAccess := clamp01(float64(stride*a.ElemSize) / line)
		reuse := a.Accesses / float64(a.Elems)
		if reuse <= 1 {
			return perAccess
		}
		first := 1 / reuse
		return clamp01(perAccess * (first + (1-first)*spill))

	case kpl.AccessRandom:
		// A random touch hits only if its line happens to be resident.
		resident := clamp01(capacity / math.Max(ws, 1))
		return clamp01(1 - resident)
	}
	return 0
}

// Misses predicts the absolute miss count for the access stream.
func Misses(g *arch.GPU, a Access) float64 {
	return MissRate(g, a) * a.Accesses
}

// Result aggregates the model's prediction for one kernel launch.
type Result struct {
	Accesses float64
	Misses   float64
	// StallCycles is Υ[data]: the data-dependency stall cycles the misses
	// inflict after overlap with independent warps.
	StallCycles float64
}

// maxOverlapWarps bounds how many concurrent warps can cover one miss's
// latency (MSHR-style limit).
const maxOverlapWarps = 16.0

// Analyze predicts misses and Υ[data] for a launch that keeps residentWarps
// warps in flight on each of activeSMs SMs. More resident warps hide more of
// each miss's penalty, and misses distribute across the active SMs; the
// remainder surfaces as stall cycles on the kernel's critical path.
func Analyze(g *arch.GPU, accesses []Access, residentWarps, activeSMs int) Result {
	var r Result
	for _, a := range accesses {
		r.Accesses += a.Accesses
		r.Misses += Misses(g, a)
	}
	overlap := math.Min(math.Max(float64(residentWarps), 1), maxOverlapWarps)
	sms := math.Max(float64(activeSMs), 1)
	r.StallCycles = r.Misses * g.MissPenaltyCycles / (overlap * sms)
	return r
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
