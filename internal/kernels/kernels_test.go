package kernels

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/kir"
	"repro/internal/kpl"
)

// buildEnv materializes the workload's buffers into an interpreter
// environment.
func buildEnv(t *testing.T, b *Benchmark, w *Workload) *kpl.Env {
	t.Helper()
	env, err := BuildEnv(b, w)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func compareBuffers(t *testing.T, bench, name string, a, b *kpl.Buffer) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s/%s: length %d vs %d", bench, name, a.Len(), b.Len())
	}
	bad := 0
	for i := 0; i < a.Len(); i++ {
		va, vb := a.At(i), b.At(i)
		if va.T == kpl.I32 {
			if va.I != vb.I {
				bad++
				if bad < 4 {
					t.Errorf("%s/%s[%d]: interp %d vs native %d", bench, name, i, va.I, vb.I)
				}
			}
			continue
		}
		x, y := va.F, vb.F
		diff := math.Abs(x - y)
		if diff > 1e-4*(1+math.Max(math.Abs(x), math.Abs(y))) {
			bad++
			if bad < 4 {
				t.Errorf("%s/%s[%d]: interp %g vs native %g", bench, name, i, x, y)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s/%s: %d mismatches of %d", bench, name, bad, a.Len())
	}
}

// TestInterpreterNativeAgreement runs every benchmark's kernel both through
// the kpl interpreter (the GPU emulator) and through its native Go
// implementation (the host-GPU semantics) on identical inputs and asserts
// the outputs match. This is the paper's binary-compatibility property: the
// same guest kernel produces the same results on either back end.
func TestInterpreterNativeAgreement(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Native == nil {
				t.Skip("no native implementation")
			}
			w := b.MakeWorkload(1)
			envInterp := buildEnv(t, b, w)
			envNative := buildEnv(t, b, w)
			if err := b.Kernel.ExecAll(envInterp, nil); err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			if err := b.Native(envNative); err != nil {
				t.Fatalf("native: %v", err)
			}
			for _, name := range w.OutBufs {
				compareBuffers(t, b.Name, name, envInterp.Bufs[name], envNative.Bufs[name])
			}
		})
	}
}

// TestSigmaConsistency checks that the static σ derivation (Eq. 1) agrees
// with the interpreter's exact dynamic counts to within the static branch
// probability error.
func TestSigmaConsistency(t *testing.T) {
	neutral := arch.Quadro4000() // Expand = 1 everywhere
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.MakeWorkload(1)
			env := buildEnv(t, b, w)
			st := kpl.NewStats()
			if err := b.Kernel.ExecAll(env, st); err != nil {
				t.Fatal(err)
			}
			sigma, err := b.Prog.Sigma(&neutral, kir.Launch{NThreads: w.Threads(), Params: w.Params}, st)
			if err != nil {
				t.Fatal(err)
			}
			got, want := sigma.Sum(), st.Instr.Sum()
			if want == 0 {
				t.Fatal("kernel executed no instructions")
			}
			rel := math.Abs(got-want) / want
			if rel > 0.20 {
				t.Errorf("σ static %v vs dynamic %v (%.1f%% off)", got, want, 100*rel)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 28 {
		t.Fatalf("expected 28 benchmarks, have %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names not sorted")
		}
	}
	if len(All()) != len(names) {
		t.Fatal("All/Names mismatch")
	}
	if _, err := Get("vectorAdd"); err != nil {
		t.Error(err)
	}
	if _, err := Get("ghost"); err == nil {
		t.Error("Get accepted unknown name")
	}
}

// TestCoalescableSetMatchesPaper: the paper names the applications whose
// kernels are not sped up by the optimizations "mostly due to the way they
// access and manage the memory".
func TestCoalescableSetMatchesPaper(t *testing.T) {
	unfriendly := map[string]bool{
		"convolutionSeparable": true,
		"dct8x8":               true,
		"SobelFilter":          true,
		"MonteCarlo":           true,
		"nbody":                true,
		"smokeParticles":       true,
	}
	for _, b := range All() {
		if want := !unfriendly[b.Name]; b.Coalescable != want {
			t.Errorf("%s: Coalescable = %v, want %v", b.Name, b.Coalescable, want)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	for _, b := range All() {
		for _, scale := range []int{1, 2, 4} {
			w := b.MakeWorkload(scale)
			if w.Grid <= 0 || w.Block <= 0 {
				t.Errorf("%s@%d: bad shape %d×%d", b.Name, scale, w.Grid, w.Block)
			}
			if w.N <= 0 {
				t.Errorf("%s@%d: zero problem size", b.Name, scale)
			}
			if len(w.OutBufs) == 0 {
				t.Errorf("%s@%d: no output buffers", b.Name, scale)
			}
			for _, name := range w.OutBufs {
				if _, ok := w.BufBytes[name]; !ok {
					t.Errorf("%s@%d: out buffer %q unallocated", b.Name, scale, name)
				}
			}
			for name, in := range w.Inputs {
				if len(in) > w.BufBytes[name] {
					t.Errorf("%s@%d: input %q larger than allocation", b.Name, scale, name)
				}
			}
			if w.InBytes() < 0 || w.OutBytes() <= 0 {
				t.Errorf("%s@%d: byte accounting broken", b.Name, scale)
			}
		}
	}
}

// TestWorkloadScaleGrowsWork: larger scales must not shrink the problem.
func TestWorkloadScaleGrowsWork(t *testing.T) {
	for _, b := range All() {
		w1 := b.MakeWorkload(1)
		w8 := b.MakeWorkload(8)
		if w8.N < w1.N {
			t.Errorf("%s: scale 8 smaller than scale 1 (%d < %d)", b.Name, w8.N, w1.N)
		}
		if w8.Threads() < w1.Threads() {
			t.Errorf("%s: scale 8 fewer threads", b.Name)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, b := range All() {
		a := b.MakeWorkload(2)
		c := b.MakeWorkload(2)
		for name, in := range a.Inputs {
			other := c.Inputs[name]
			if len(in) != len(other) {
				t.Fatalf("%s/%s: nondeterministic input size", b.Name, name)
			}
			for i := range in {
				if in[i] != other[i] {
					t.Fatalf("%s/%s: nondeterministic input content", b.Name, name)
				}
			}
		}
	}
}

func TestIterationMetadata(t *testing.T) {
	for _, b := range All() {
		if b.Iterations <= 0 {
			t.Errorf("%s: non-positive Iterations", b.Name)
		}
		if b.NonCUDAVPSeconds < 0 {
			t.Errorf("%s: negative non-CUDA time", b.Name)
		}
	}
	// The GL/file-bound set must carry non-CUDA time (paper Section 5).
	for _, name := range []string{
		"Mandelbrot", "bicubicTexture", "recursiveGaussian", "MonteCarlo",
		"segmentationTreeThrust", "simpleGL", "marchingCubes",
		"VolumeFiltering", "SobelFilter", "nbody", "smokeParticles",
	} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.NonCUDAVPSeconds <= 0 {
			t.Errorf("%s: expected non-CUDA VP time", name)
		}
	}
}

func TestNewLaunch(t *testing.T) {
	b, err := Get("vectorAdd")
	if err != nil {
		t.Fatal(err)
	}
	w := b.MakeWorkload(1)
	l := b.NewLaunch(w)
	if l.Kernel != b.Kernel || l.Prog != b.Prog {
		t.Error("launch kernel/program mismatch")
	}
	if l.Grid != w.Grid || l.Block != w.Block {
		t.Error("launch shape mismatch")
	}
	if l.Native == nil {
		t.Error("launch should carry native semantics")
	}
}

func TestMatMulWorkloadSquare(t *testing.T) {
	w := MatMulWorkload(320, 320, 320)
	if w.Threads() < 320*320 {
		t.Errorf("threads %d < elements %d", w.Threads(), 320*320)
	}
	if w.BufBytes["a"] != 8*320*320 {
		t.Errorf("A allocation %d", w.BufBytes["a"])
	}
}

// TestMergeSortActuallySorts is a stronger functional check than agreement:
// the output segments are sorted permutations of the inputs.
func TestMergeSortActuallySorts(t *testing.T) {
	b, err := Get("mergeSort")
	if err != nil {
		t.Fatal(err)
	}
	w := b.MakeWorkload(1)
	env := buildEnv(t, b, w)
	before := append([]int32(nil), env.Bufs["d"].I32s...)
	if err := b.Kernel.ExecAll(env, nil); err != nil {
		t.Fatal(err)
	}
	d := env.Bufs["d"].I32s
	seg := int(w.Params["seg"].Int())
	for s := 0; s < len(d)/seg; s++ {
		var sumB, sumA int64
		for i := 0; i < seg; i++ {
			sumB += int64(before[s*seg+i])
			sumA += int64(d[s*seg+i])
			if i > 0 && d[s*seg+i] < d[s*seg+i-1] {
				t.Fatalf("segment %d not sorted at %d", s, i)
			}
		}
		if sumA != sumB {
			t.Fatalf("segment %d not a permutation", s)
		}
	}
}

// TestHistogramCountsSum: total bin mass equals the element count.
func TestHistogramCountsSum(t *testing.T) {
	b, err := Get("histogram")
	if err != nil {
		t.Fatal(err)
	}
	w := b.MakeWorkload(1)
	env := buildEnv(t, b, w)
	if err := b.Kernel.ExecAll(env, nil); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range env.Bufs["bins"].I32s {
		if c < 0 {
			t.Fatal("negative bin")
		}
		total += int64(c)
	}
	if total != int64(w.N) {
		t.Fatalf("bin mass %d != %d elements", total, w.N)
	}
}

// TestBlackScholesPutCallParity: C − P = S − X·e^{−rT} within f32 tolerance.
func TestBlackScholesPutCallParity(t *testing.T) {
	b, err := Get("BlackScholes")
	if err != nil {
		t.Fatal(err)
	}
	w := b.MakeWorkload(1)
	env := buildEnv(t, b, w)
	if err := b.Native(env); err != nil {
		t.Fatal(err)
	}
	rr := float32(w.Params["r"].Float())
	s := env.Bufs["price"].F32s
	x := env.Bufs["strike"].F32s
	yr := env.Bufs["years"].F32s
	call := env.Bufs["call"].F32s
	put := env.Bufs["put"].F32s
	n := int(w.Params["n"].Int())
	for i := 0; i < n; i += 97 {
		lhs := float64(call[i] - put[i])
		rhs := float64(s[i]) - float64(x[i])*math.Exp(-float64(rr)*float64(yr[i]))
		if math.Abs(lhs-rhs) > 1e-2*(1+math.Abs(rhs)) {
			t.Fatalf("parity violated at %d: %g vs %g", i, lhs, rhs)
		}
	}
}

// TestMandelbrotInteriorExterior: a point inside the set hits maxIter; a far
// exterior point escapes immediately.
func TestMandelbrotInteriorExterior(t *testing.T) {
	b, err := Get("Mandelbrot")
	if err != nil {
		t.Fatal(err)
	}
	w := b.MakeWorkload(1)
	env := buildEnv(t, b, w)
	if err := b.Native(env); err != nil {
		t.Fatal(err)
	}
	out := env.Bufs["out"].I32s
	wd := int(w.Params["w"].Int())
	h := int(w.Params["h"].Int())
	maxIter := int32(w.Params["maxIter"].Int())
	// Interior: cx≈-0.4 (x where x/w*3−2.2 ≈ −0.4 → x=0.6w), cy≈0 (y=h/2).
	interior := (h/2)*wd + (wd * 6 / 10)
	if out[interior] != maxIter {
		t.Errorf("interior point escaped at %d", out[interior])
	}
	// Exterior: corner (cx=−2.2, cy=−1.2) escapes quickly.
	if out[0] >= maxIter {
		t.Error("corner did not escape")
	}
}

// TestFoldedKernelsAgree: constant-folding every registry kernel preserves
// its semantics exactly (the compiler front-end pass is safe on the whole
// suite).
func TestFoldedKernelsAgree(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.MakeWorkload(1)
			folded := kpl.Fold(b.Kernel)
			if err := folded.Validate(); err != nil {
				t.Fatal(err)
			}
			envO := buildEnv(t, b, w)
			envF := buildEnv(t, b, w)
			if err := b.Kernel.ExecAll(envO, nil); err != nil {
				t.Fatal(err)
			}
			if err := folded.ExecAll(envF, nil); err != nil {
				t.Fatal(err)
			}
			for _, name := range w.OutBufs {
				compareBuffers(t, b.Name+"(folded)", name, envO.Bufs[name], envF.Bufs[name])
			}
		})
	}
}
