package kernels

import (
	"fmt"

	"repro/internal/devmem"
	"repro/internal/kpl"
)

// VectorAdd is the canonical elementwise kernel of Fig. 10: a grid-stride
// c[i] = a[i] + b[i]. Fully coalescable — splitting the same total input
// across N programs and merging them back is the paper's coalescing study.
var VectorAdd = register(&Benchmark{
	Name: "vectorAdd",
	Kernel: &kpl.Kernel{
		Name:   "vectorAdd",
		Params: []kpl.ParamDecl{{Name: "n", T: kpl.I32}},
		Bufs: []kpl.BufDecl{
			{Name: "a", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "b", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			forL("elems", "j", ci(0), eptExpr(par("n")),
				let("i", gsIndex("j")),
				ifP(0.95, lt(lv("i"), par("n")),
					store("out", lv("i"), add(load("a", lv("i")), load("b", lv("i")))),
				),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		a, b, out := env.Bufs["a"].F32s, env.Bufs["b"].F32s, env.Bufs["out"].F32s
		for i := 0; i < n; i++ {
			out[i] = a[i] + b[i]
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 16384 * scale
		r := newPRNG(1)
		return &Workload{
			Grid:  ceilDiv(n, 512),
			Block: 512,
			N:     n,
			Params: map[string]kpl.Value{
				"n": kpl.IntVal(int64(n)),
			},
			BufBytes: map[string]int{"a": 4 * n, "b": 4 * n, "out": 4 * n},
			Inputs: map[string][]byte{
				"a": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
				"b": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:        12,
	Coalescable:       true,
	CopyEachIteration: true,
})

// ScalarProd computes dot products of vector pairs (CUDA SDK scalarProd):
// one thread per pair.
var ScalarProd = register(&Benchmark{
	Name: "scalarProd",
	Kernel: &kpl.Kernel{
		Name: "scalarProd",
		Params: []kpl.ParamDecl{
			{Name: "nv", T: kpl.I32},
			{Name: "len", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "a", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "b", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("nv")),
				let("base", mul(tid(), par("len"))),
				let("acc", cf(0)),
				forL("dot", "k", ci(0), par("len"),
					let("idx", add(lv("base"), lv("k"))),
					let("acc", add(lv("acc"), mul(load("a", lv("idx")), load("b", lv("idx"))))),
				),
				store("out", tid(), lv("acc")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		nv := int(env.Params["nv"].Int())
		length := int(env.Params["len"].Int())
		a, b, out := env.Bufs["a"].F32s, env.Bufs["b"].F32s, env.Bufs["out"].F32s
		for v := 0; v < nv; v++ {
			var acc float32
			for k := 0; k < length; k++ {
				acc += a[v*length+k] * b[v*length+k]
			}
			out[v] = acc
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		nv, length := 256*scale, 64
		n := nv * length
		r := newPRNG(2)
		return &Workload{
			Grid:  ceilDiv(nv, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"nv":  kpl.IntVal(int64(nv)),
				"len": kpl.IntVal(int64(length)),
			},
			BufBytes: map[string]int{"a": 4 * n, "b": 4 * n, "out": 4 * nv},
			Inputs: map[string][]byte{
				"a": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
				"b": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:        10,
	Coalescable:       true,
	CopyEachIteration: true,
})

// Reduction sums a vector: each thread accumulates a grid-stride partial and
// atomically adds it to out[0] (CUDA SDK reduction, final-stage atomic).
var Reduction = register(&Benchmark{
	Name: "reduction",
	Kernel: &kpl.Kernel{
		Name:   "reduction",
		Params: []kpl.ParamDecl{{Name: "n", T: kpl.I32}},
		Bufs: []kpl.BufDecl{
			{Name: "in", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessBroadcast},
		},
		Body: []kpl.Stmt{
			let("acc", cf(0)),
			forL("elems", "j", ci(0), eptExpr(par("n")),
				let("i", gsIndex("j")),
				ifP(0.95, lt(lv("i"), par("n")),
					let("acc", add(lv("acc"), load("in", lv("i")))),
				),
			),
			atomAdd("out", ci(0), lv("acc")),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		in, out := env.Bufs["in"].F32s, env.Bufs["out"].F32s
		threads := env.NThreads
		// Match the interpreter's accumulation order: per-thread partials in
		// thread order, each over its grid-stride elements.
		for t := 0; t < threads; t++ {
			var acc float32
			for i := t; i < n; i += threads {
				acc += in[i]
			}
			out[0] += acc
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 16384 * scale
		r := newPRNG(3)
		return &Workload{
			Grid:  4,
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n": kpl.IntVal(int64(n)),
			},
			BufBytes: map[string]int{"in": 4 * n, "out": 4},
			Inputs: map[string][]byte{
				"in": devmem.EncodeF32(r.f32Slice(n, 0, 1)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:        16,
	Coalescable:       true,
	CopyEachIteration: true,
})

// Histogram counts 256-bin value frequencies with atomics (CUDA SDK
// histogram). Integer-only: one of the FP-light, lower-speedup workloads.
var Histogram = register(&Benchmark{
	Name: "histogram",
	Kernel: &kpl.Kernel{
		Name:   "histogram",
		Params: []kpl.ParamDecl{{Name: "n", T: kpl.I32}},
		Bufs: []kpl.BufDecl{
			{Name: "in", Elem: kpl.I32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "bins", Elem: kpl.I32, Access: kpl.AccessRandom},
		},
		Body: []kpl.Stmt{
			forL("elems", "j", ci(0), eptExpr(par("n")),
				let("i", gsIndex("j")),
				ifP(0.95, lt(lv("i"), par("n")),
					atomAdd("bins", andE(load("in", lv("i")), ci(255)), ci(1)),
				),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		in, bins := env.Bufs["in"].I32s, env.Bufs["bins"].I32s
		for i := 0; i < n; i++ {
			bins[in[i]&255]++
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 16384 * scale
		r := newPRNG(4)
		return &Workload{
			Grid:  8,
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n": kpl.IntVal(int64(n)),
			},
			BufBytes: map[string]int{"in": 4 * n, "bins": 4 * 256},
			Inputs: map[string][]byte{
				"in": devmem.EncodeI32(r.i32Slice(n, 256)),
			},
			OutBufs: []string{"bins"},
		}
	},
	Iterations:        10,
	Coalescable:       true,
	CopyEachIteration: true,
})

// Transpose writes the transpose of a rows×cols matrix (CUDA SDK transpose).
// The store stream is strided — a memory-behaviour stress for the cache
// model.
var Transpose = register(&Benchmark{
	Name: "transpose",
	Kernel: &kpl.Kernel{
		Name: "transpose",
		Params: []kpl.ParamDecl{
			{Name: "rows", T: kpl.I32},
			{Name: "cols", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "in", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessStrided, Stride: 256},
		},
		Body: []kpl.Stmt{
			let("n", mul(par("rows"), par("cols"))),
			ifP(0.95, lt(tid(), lv("n")),
				let("r", div(tid(), par("cols"))),
				let("c", mod(tid(), par("cols"))),
				store("out", add(mul(lv("c"), par("rows")), lv("r")), load("in", tid())),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		rows := int(env.Params["rows"].Int())
		cols := int(env.Params["cols"].Int())
		in, out := env.Bufs["in"].F32s, env.Bufs["out"].F32s
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				out[c*rows+r] = in[r*cols+c]
			}
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		rows, cols := 64*scale, 256
		n := rows * cols
		r := newPRNG(5)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"rows": kpl.IntVal(int64(rows)),
				"cols": kpl.IntVal(int64(cols)),
			},
			BufBytes: map[string]int{"in": 4 * n, "out": 4 * n},
			Inputs: map[string][]byte{
				"in": devmem.EncodeF32(r.f32Slice(n, -10, 10)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:        10,
	Coalescable:       true,
	CopyEachIteration: true,
})

// sanity check at init: every registered benchmark must produce a workload
// whose buffers cover the kernel's declarations.
func init() {
	for _, b := range All() {
		w := b.MakeWorkload(1)
		for _, decl := range b.Kernel.Bufs {
			if _, ok := w.BufBytes[decl.Name]; !ok {
				panic(fmt.Sprintf("kernels: %s: workload missing buffer %q", b.Name, decl.Name))
			}
		}
	}
}
