package kernels

import (
	"math"

	"repro/internal/devmem"
	"repro/internal/kpl"
)

// Mandelbrot iterates the escape recurrence per pixel (CUDA SDK Mandelbrot):
// the canonical data-dependent-λ kernel — its trip counts come from dynamic
// sampling (paper footnote 2). File/GL output in the SDK.
var Mandelbrot = register(&Benchmark{
	Name: "Mandelbrot",
	Kernel: &kpl.Kernel{
		Name: "Mandelbrot",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
			{Name: "maxIter", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "out", Elem: kpl.I32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("cx", sub(mul(div(toF32(lv("x")), toF32(par("w"))), cf(3.0)), cf(2.2))),
				let("cy", sub(mul(div(toF32(lv("y")), toF32(par("h"))), cf(2.4)), cf(1.2))),
				let("zx", cf(0)),
				let("zy", cf(0)),
				let("cnt", ci(0)),
				forL("escape", "it", ci(0), par("maxIter"),
					let("zx2", mul(lv("zx"), lv("zx"))),
					let("zy2", mul(lv("zy"), lv("zy"))),
					ifS(gt(add(lv("zx2"), lv("zy2")), cf(4)), brk()),
					let("nzx", add(sub(lv("zx2"), lv("zy2")), lv("cx"))),
					let("zy", add(mul(cf(2), mul(lv("zx"), lv("zy"))), lv("cy"))),
					let("zx", lv("nzx")),
					let("cnt", add(lv("cnt"), ci(1))),
				),
				store("out", tid(), lv("cnt")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		maxIter := int(env.Params["maxIter"].Int())
		out := env.Bufs["out"].I32s
		for t := 0; t < w*h && t < env.NThreads; t++ {
			x, y := t%w, t/w
			cx := float32(x)/float32(w)*3.0 - 2.2
			cy := float32(y)/float32(h)*2.4 - 1.2
			var zx, zy float32
			var cnt int32
			for it := 0; it < maxIter; it++ {
				zx2, zy2 := zx*zx, zy*zy
				if zx2+zy2 > 4 {
					break
				}
				zx, zy = zx2-zy2+cx, 2*zx*zy+cy
				cnt++
			}
			out[t] = cnt
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		w, h := 256, 16*scale
		n := w * h
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"w":       kpl.IntVal(int64(w)),
				"h":       kpl.IntVal(int64(h)),
				"maxIter": kpl.IntVal(128),
			},
			BufBytes: map[string]int{"out": 4 * n},
			Inputs:   map[string][]byte{},
			OutBufs:  []string{"out"},
		}
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00015, // writes result images to files
	Coalescable:      true,
})

// SimpleGL displaces a vertex mesh by a travelling sine wave (CUDA SDK
// simpleGL). Almost all of the application's time is OpenGL rendering, which
// ΣVP does not accelerate — the paper's motivating example (62 s emulated,
// 1428×/4104× speedups).
var SimpleGL = register(&Benchmark{
	Name: "simpleGL",
	Kernel: &kpl.Kernel{
		Name: "simpleGL",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
			{Name: "time", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "pos", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("u", sub(mul(div(toF32(lv("x")), toF32(par("w"))), cf(2)), cf(1))),
				let("v", sub(mul(div(toF32(lv("y")), toF32(par("h"))), cf(2)), cf(1))),
				let("freq", cf(4)),
				store("pos", tid(), mul(
					mul(sinE(add(mul(lv("u"), lv("freq")), par("time"))),
						cosE(add(mul(lv("v"), lv("freq")), par("time")))),
					cf(0.5))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		tm := float32(env.Params["time"].Float())
		pos := env.Bufs["pos"].F32s
		for t := 0; t < w*h && t < env.NThreads; t++ {
			x, y := t%w, t/w
			u := float32(x)/float32(w)*2 - 1
			v := float32(y)/float32(h)*2 - 1
			const freq = float32(4)
			su := float32(math.Sin(float64(u*freq + tm)))
			cv := float32(math.Cos(float64(v*freq + tm)))
			pos[t] = su * cv * 0.5
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		w, h := 256, 16*scale
		n := w * h
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"w":    kpl.IntVal(int64(w)),
				"h":    kpl.IntVal(int64(h)),
				"time": kpl.F32Val(1.5),
			},
			BufBytes: map[string]int{"pos": 4 * n},
			Inputs:   map[string][]byte{},
			OutBufs:  []string{"pos"},
		}
	},
	Iterations:       12,
	NonCUDAVPSeconds: 0.00035, // Mesa-emulated OpenGL rendering dominates
	Coalescable:      true,
})

// MarchingCubes classifies voxels of an implicit field (CUDA SDK
// marchingCubes, classifyVoxel stage): 8 corner samples → cube index.
var MarchingCubes = register(&Benchmark{
	Name: "marchingCubes",
	Kernel: &kpl.Kernel{
		Name: "marchingCubes",
		Params: []kpl.ParamDecl{
			{Name: "dim", T: kpl.I32}, // voxels per axis
			{Name: "iso", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "idx", Elem: kpl.I32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			let("n", mul(par("dim"), mul(par("dim"), par("dim")))),
			ifP(0.95, lt(tid(), lv("n")),
				let("x", mod(tid(), par("dim"))),
				let("y", mod(div(tid(), par("dim")), par("dim"))),
				let("z", div(tid(), mul(par("dim"), par("dim")))),
				let("cube", ci(0)),
				forL("corners", "c", ci(0), ci(8),
					let("fx", toF32(add(lv("x"), andE(lv("c"), ci(1))))),
					let("fy", toF32(add(lv("y"), andE(shrE(lv("c"), ci(1)), ci(1))))),
					let("fz", toF32(add(lv("z"), andE(shrE(lv("c"), ci(2)), ci(1))))),
					let("cx", sub(div(lv("fx"), toF32(par("dim"))), cf(0.5))),
					let("cy", sub(div(lv("fy"), toF32(par("dim"))), cf(0.5))),
					let("cz", sub(div(lv("fz"), toF32(par("dim"))), cf(0.5))),
					let("field", add(add(mul(lv("cx"), lv("cx")), mul(lv("cy"), lv("cy"))), mul(lv("cz"), lv("cz")))),
					ifS(lt(lv("field"), par("iso")),
						let("cube", kpl.Or(lv("cube"), shlE(ci(1), lv("c")))),
					),
				),
				store("idx", tid(), lv("cube")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		dim := int(env.Params["dim"].Int())
		iso := float32(env.Params["iso"].Float())
		idx := env.Bufs["idx"].I32s
		n := dim * dim * dim
		for t := 0; t < n && t < env.NThreads; t++ {
			x := t % dim
			y := (t / dim) % dim
			z := t / (dim * dim)
			var cube int32
			for c := 0; c < 8; c++ {
				fx := float32(x + (c & 1))
				fy := float32(y + ((c >> 1) & 1))
				fz := float32(z + ((c >> 2) & 1))
				cx := fx/float32(dim) - 0.5
				cy := fy/float32(dim) - 0.5
				cz := fz/float32(dim) - 0.5
				field := (cx*cx + cy*cy) + cz*cz
				if field < iso {
					cube |= 1 << c
				}
			}
			idx[t] = cube
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		dim := 16 * isqrt3(scale)
		n := dim * dim * dim
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"dim": kpl.IntVal(int64(dim)),
				"iso": kpl.F32Val(0.16),
			},
			BufBytes: map[string]int{"idx": 4 * n},
			Inputs:   map[string][]byte{},
			OutBufs:  []string{"idx"},
		}
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00030, // OpenGL isosurface rendering
	Coalescable:      true,
})

// VolumeFiltering applies a 7-point 3D box filter (CUDA SDK
// volumeFiltering). FP-light relative to its memory traffic — one of the
// lower-speedup kernels; OpenGL volume rendering in the SDK.
var VolumeFiltering = register(&Benchmark{
	Name: "VolumeFiltering",
	Kernel: &kpl.Kernel{
		Name: "VolumeFiltering",
		Params: []kpl.ParamDecl{
			{Name: "dim", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "vol", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.3, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			let("n", mul(par("dim"), mul(par("dim"), par("dim")))),
			ifP(0.95, lt(tid(), lv("n")),
				let("x", mod(tid(), par("dim"))),
				let("y", mod(div(tid(), par("dim")), par("dim"))),
				let("z", div(tid(), mul(par("dim"), par("dim")))),
				let("d1", sub(par("dim"), ci(1))),
				let("acc", load("vol", tid())),
				let("acc", add(lv("acc"), volAt(-1, 0, 0))),
				let("acc", add(lv("acc"), volAt(1, 0, 0))),
				let("acc", add(lv("acc"), volAt(0, -1, 0))),
				let("acc", add(lv("acc"), volAt(0, 1, 0))),
				let("acc", add(lv("acc"), volAt(0, 0, -1))),
				let("acc", add(lv("acc"), volAt(0, 0, 1))),
				store("out", tid(), div(lv("acc"), cf(7))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		dim := int(env.Params["dim"].Int())
		vol, out := env.Bufs["vol"].F32s, env.Bufs["out"].F32s
		n := dim * dim * dim
		at := func(x, y, z int) float32 {
			return vol[clampInt(z, 0, dim-1)*dim*dim+clampInt(y, 0, dim-1)*dim+clampInt(x, 0, dim-1)]
		}
		for t := 0; t < n && t < env.NThreads; t++ {
			x := t % dim
			y := (t / dim) % dim
			z := t / (dim * dim)
			acc := vol[t]
			acc += at(x-1, y, z)
			acc += at(x+1, y, z)
			acc += at(x, y-1, z)
			acc += at(x, y+1, z)
			acc += at(x, y, z-1)
			acc += at(x, y, z+1)
			out[t] = acc / 7
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		dim := 16 * isqrt3(scale)
		n := dim * dim * dim
		r := newPRNG(17)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"dim": kpl.IntVal(int64(dim)),
			},
			BufBytes: map[string]int{"vol": 4 * n, "out": 4 * n},
			Inputs: map[string][]byte{
				"vol": devmem.EncodeF32(r.f32Slice(n, 0, 1)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00025, // OpenGL volume rendering
	Coalescable:      true,
})

// volAt builds the clamped 3D neighbour load for VolumeFiltering (expects
// locals x, y, z, d1).
func volAt(dx, dy, dz int64) kpl.Expr {
	xx := clampI(add(lv("x"), ci(dx)), ci(0), lv("d1"))
	yy := clampI(add(lv("y"), ci(dy)), ci(0), lv("d1"))
	zz := clampI(add(lv("z"), ci(dz)), ci(0), lv("d1"))
	return load("vol", add(mul(zz, mul(par("dim"), par("dim"))), add(mul(yy, par("dim")), xx)))
}

// NBody integrates gravitational accelerations over all bodies (CUDA SDK
// nbody): rsqrt-heavy O(N) loop per body. OpenGL display; the all-pairs
// shared-memory staging defeats coalescing (paper Section 5).
var NBody = register(&Benchmark{
	Name: "nbody",
	Kernel: &kpl.Kernel{
		Name: "nbody",
		Params: []kpl.ParamDecl{
			{Name: "n", T: kpl.I32},
			{Name: "dt", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "px", Elem: kpl.F32, Access: kpl.AccessBroadcast, ReadOnly: true},
			{Name: "py", Elem: kpl.F32, Access: kpl.AccessBroadcast, ReadOnly: true},
			{Name: "vx", Elem: kpl.F32, Access: kpl.AccessSeq},
			{Name: "vy", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("n")),
				let("myx", load("px", tid())),
				let("myy", load("py", tid())),
				let("ax", cf(0)),
				let("ay", cf(0)),
				forL("pairs", "j", ci(0), par("n"),
					let("dx", sub(load("px", lv("j")), lv("myx"))),
					let("dy", sub(load("py", lv("j")), lv("myy"))),
					let("r2", add(add(mul(lv("dx"), lv("dx")), mul(lv("dy"), lv("dy"))), cf(0.01))),
					let("inv", rsqrtE(lv("r2"))),
					let("inv3", mul(lv("inv"), mul(lv("inv"), lv("inv")))),
					let("ax", add(lv("ax"), mul(lv("dx"), lv("inv3")))),
					let("ay", add(lv("ay"), mul(lv("dy"), lv("inv3")))),
				),
				store("vx", tid(), add(load("vx", tid()), mul(lv("ax"), par("dt")))),
				store("vy", tid(), add(load("vy", tid()), mul(lv("ay"), par("dt")))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		dt := float32(env.Params["dt"].Float())
		px, py := env.Bufs["px"].F32s, env.Bufs["py"].F32s
		vx, vy := env.Bufs["vx"].F32s, env.Bufs["vy"].F32s
		for t := 0; t < n && t < env.NThreads; t++ {
			myx, myy := px[t], py[t]
			var ax, ay float32
			for j := 0; j < n; j++ {
				dx := px[j] - myx
				dy := py[j] - myy
				r2 := (dx*dx + dy*dy) + 0.01
				inv := float32(1 / math.Sqrt(float64(r2)))
				inv3 := inv * (inv * inv)
				ax += dx * inv3
				ay += dy * inv3
			}
			vx[t] += ax * dt
			vy[t] += ay * dt
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 256 * scale
		r := newPRNG(18)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n":  kpl.IntVal(int64(n)),
				"dt": kpl.F32Val(0.01),
			},
			BufBytes: map[string]int{"px": 4 * n, "py": 4 * n, "vx": 4 * n, "vy": 4 * n},
			Inputs: map[string][]byte{
				"px": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
				"py": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
				"vx": devmem.EncodeF32(r.f32Slice(n, -0.1, 0.1)),
				"vy": devmem.EncodeF32(r.f32Slice(n, -0.1, 0.1)),
			},
			OutBufs: []string{"vx", "vy"},
		}
	},
	Iterations:       12,
	NonCUDAVPSeconds: 0.00020, // OpenGL particle display
	Coalescable:      false,
})

// SmokeParticles advects particles through a procedural turbulence field
// (CUDA SDK smokeParticles). OpenGL-bound; per-particle sorted buckets make
// it coalescing-unfriendly (paper Section 5).
var SmokeParticles = register(&Benchmark{
	Name: "smokeParticles",
	Kernel: &kpl.Kernel{
		Name: "smokeParticles",
		Params: []kpl.ParamDecl{
			{Name: "n", T: kpl.I32},
			{Name: "dt", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "px", Elem: kpl.F32, Access: kpl.AccessSeq},
			{Name: "py", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("n")),
				let("x", load("px", tid())),
				let("y", load("py", tid())),
				forL("steps", "s", ci(0), ci(4),
					let("ux", mul(sinE(mul(lv("y"), cf(3.1))), cosE(mul(lv("x"), cf(1.7))))),
					let("uy", mul(cosE(mul(lv("x"), cf(2.3))), sinE(mul(lv("y"), cf(1.3))))),
					let("x", add(lv("x"), mul(lv("ux"), par("dt")))),
					let("y", add(lv("y"), mul(lv("uy"), par("dt")))),
				),
				store("px", tid(), lv("x")),
				store("py", tid(), lv("y")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		dt := float32(env.Params["dt"].Float())
		px, py := env.Bufs["px"].F32s, env.Bufs["py"].F32s
		for t := 0; t < n && t < env.NThreads; t++ {
			x, y := px[t], py[t]
			for s := 0; s < 4; s++ {
				ux := float32(math.Sin(float64(y*3.1))) * float32(math.Cos(float64(x*1.7)))
				uy := float32(math.Cos(float64(x*2.3))) * float32(math.Sin(float64(y*1.3)))
				x += ux * dt
				y += uy * dt
			}
			px[t] = x
			py[t] = y
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 4096 * scale
		r := newPRNG(19)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n":  kpl.IntVal(int64(n)),
				"dt": kpl.F32Val(0.02),
			},
			BufBytes: map[string]int{"px": 4 * n, "py": 4 * n},
			Inputs: map[string][]byte{
				"px": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
				"py": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
			},
			OutBufs: []string{"px", "py"},
		}
	},
	Iterations:       12,
	NonCUDAVPSeconds: 0.00030, // OpenGL smoke rendering
	Coalescable:      false,
})

// isqrt3 returns ⌈scale^(1/3)⌉ so 3D workloads grow roughly linearly in
// total work with scale.
func isqrt3(scale int) int {
	if scale <= 1 {
		return 1
	}
	c := int(math.Cbrt(float64(scale)))
	for c*c*c < scale {
		c++
	}
	return c
}
