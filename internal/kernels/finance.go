package kernels

import (
	"math"

	"repro/internal/devmem"
	"repro/internal/kpl"
)

// cndExpr builds the cumulative-normal-distribution polynomial approximation
// used by the CUDA SDK BlackScholes kernel, as a kpl expression over the
// local variable named d. It leaves the result in the local "cnd".
func cndStmts() []kpl.Stmt {
	return []kpl.Stmt{
		let("ad", abs(lv("d"))),
		let("kk", div(cf(1), add(cf(1), mul(cf(0.2316419), lv("ad"))))),
		let("poly", mul(lv("kk"),
			add(cf(0.31938153), mul(lv("kk"),
				add(cf(-0.356563782), mul(lv("kk"),
					add(cf(1.781477937), mul(lv("kk"),
						add(cf(-1.821255978), mul(lv("kk"), cf(1.330274429))))))))))),
		let("pdf", mul(cf(0.3989422804014327), expE(mul(cf(-0.5), mul(lv("d"), lv("d")))))),
		let("cnd", sub(cf(1), mul(lv("pdf"), lv("poly")))),
		ifS(lt(lv("d"), cf(0)), let("cnd", sub(cf(1), lv("cnd")))),
	}
}

// cndNative mirrors cndStmts in float32 arithmetic.
func cndNative(d float32) float32 {
	ad := d
	if ad < 0 {
		ad = -ad
	}
	k := float32(1) / (1 + 0.2316419*ad)
	poly := k * (0.31938153 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	pdf := float32(0.3989422804014327) * float32(math.Exp(float64(float32(-0.5)*(d*d))))
	cnd := 1 - pdf*poly
	if d < 0 {
		cnd = 1 - cnd
	}
	return cnd
}

// BlackScholes prices European options (CUDA SDK BlackScholes): the
// FP32-intrinsic-heavy workload with the paper's highest speedups
// (2045× plain, 6304× optimized).
var BlackScholes = register(&Benchmark{
	Name: "BlackScholes",
	Kernel: &kpl.Kernel{
		Name: "BlackScholes",
		Params: []kpl.ParamDecl{
			{Name: "n", T: kpl.I32},
			{Name: "r", T: kpl.F32},
			{Name: "vol", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "price", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "strike", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "years", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "call", Elem: kpl.F32, Access: kpl.AccessSeq},
			{Name: "put", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			forL("opts", "j", ci(0), eptExpr(par("n")),
				let("i", gsIndex("j")),
				ifP(0.95, lt(lv("i"), par("n")),
					let("s", load("price", lv("i"))),
					let("x", load("strike", lv("i"))),
					let("t", load("years", lv("i"))),
					let("sqrtT", sqrtE(lv("t"))),
					let("d", div(
						add(logE(div(lv("s"), lv("x"))),
							mul(add(par("r"), mul(cf(0.5), mul(par("vol"), par("vol")))), lv("t"))),
						mul(par("vol"), lv("sqrtT")))),
					let("d1", lv("d")),
				),
			),
		},
	},
	// The full body continues below via buildBlackScholes (kept separate so
	// the CND polynomial is shared between d1 and d2).
	Iterations:  10,
	Coalescable: true,
	MakeWorkload: func(scale int) *Workload {
		n := 8192 * scale
		r := newPRNG(10)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n":   kpl.IntVal(int64(n)),
				"r":   kpl.F32Val(0.02),
				"vol": kpl.F32Val(0.30),
			},
			BufBytes: map[string]int{
				"price": 4 * n, "strike": 4 * n, "years": 4 * n,
				"call": 4 * n, "put": 4 * n,
			},
			Inputs: map[string][]byte{
				"price":  devmem.EncodeF32(r.f32Slice(n, 5, 30)),
				"strike": devmem.EncodeF32(r.f32Slice(n, 1, 100)),
				"years":  devmem.EncodeF32(r.f32Slice(n, 0.25, 10)),
			},
			OutBufs: []string{"call", "put"},
		}
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		rr := float32(env.Params["r"].Float())
		vol := float32(env.Params["vol"].Float())
		price := env.Bufs["price"].F32s
		strike := env.Bufs["strike"].F32s
		years := env.Bufs["years"].F32s
		call := env.Bufs["call"].F32s
		put := env.Bufs["put"].F32s
		for i := 0; i < n; i++ {
			s, x, t := price[i], strike[i], years[i]
			sqrtT := float32(math.Sqrt(float64(t)))
			d1 := (float32(math.Log(float64(s/x))) + (rr+0.5*vol*vol)*t) / (vol * sqrtT)
			d2 := d1 - vol*sqrtT
			cnd1 := cndNative(d1)
			cnd2 := cndNative(d2)
			expRT := float32(math.Exp(float64(-rr * t)))
			call[i] = s*cnd1 - x*expRT*cnd2
			put[i] = x*expRT*(1-cnd2) - s*(1-cnd1)
		}
		return nil
	},
})

func init() {
	// Replace the placeholder body of the BlackScholes kernel with the full
	// pipeline: d1/d2, two CND evaluations, call and put prices.
	inner := []kpl.Stmt{
		let("s", load("price", lv("i"))),
		let("x", load("strike", lv("i"))),
		let("t", load("years", lv("i"))),
		let("sqrtT", sqrtE(lv("t"))),
		let("d1", div(
			add(logE(div(lv("s"), lv("x"))),
				mul(add(par("r"), mul(cf(0.5), mul(par("vol"), par("vol")))), lv("t"))),
			mul(par("vol"), lv("sqrtT")))),
		let("d2", sub(lv("d1"), mul(par("vol"), lv("sqrtT")))),
		let("d", lv("d1")),
	}
	inner = append(inner, cndStmts()...)
	inner = append(inner, let("cnd1", lv("cnd")), let("d", lv("d2")))
	inner = append(inner, cndStmts()...)
	inner = append(inner,
		let("cnd2", lv("cnd")),
		let("expRT", expE(mul(neg(par("r")), lv("t")))),
		store("call", lv("i"), sub(mul(lv("s"), lv("cnd1")), mul(mul(lv("x"), lv("expRT")), lv("cnd2")))),
		store("put", lv("i"),
			sub(mul(mul(lv("x"), lv("expRT")), sub(cf(1), lv("cnd2"))),
				mul(lv("s"), sub(cf(1), lv("cnd1"))))),
	)
	BlackScholes.Kernel.Body = []kpl.Stmt{
		forL("opts", "j", ci(0), eptExpr(par("n")),
			let("i", gsIndex("j")),
			ifP(0.95, lt(lv("i"), par("n")), inner...),
		),
	}
	reanalyze(BlackScholes)
}

// MonteCarlo prices an option by simulated paths with an in-kernel LCG
// (CUDA SDK MonteCarlo). Reads its option batch from a file in the SDK
// (non-CUDA time); per-thread private RNG state makes its memory management
// coalescing-unfriendly (paper Section 5).
var MonteCarlo = register(&Benchmark{
	Name: "MonteCarlo",
	Kernel: &kpl.Kernel{
		Name: "MonteCarlo",
		Params: []kpl.ParamDecl{
			{Name: "n", T: kpl.I32},
			{Name: "paths", T: kpl.I32},
			{Name: "k", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "spot", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("n")),
				let("s", load("spot", tid())),
				let("seed", add(mul(tid(), ci(1103515245)), ci(12345))),
				let("acc", cf(0)),
				forL("paths", "pp", ci(0), par("paths"),
					let("seed", add(mul(lv("seed"), ci(1664525)), ci(1013904223))),
					let("u", div(toF32(andE(lv("seed"), ci(0x7FFFFF))), cf(8388608))),
					let("z", mul(sub(lv("u"), cf(0.5)), cf(3.46))),
					let("st", mul(lv("s"), expE(add(cf(-0.045), mul(cf(0.3), lv("z")))))),
					let("pay", maxE(sub(lv("st"), par("k")), cf(0))),
					let("acc", add(lv("acc"), lv("pay"))),
				),
				store("out", tid(), div(lv("acc"), toF32(par("paths")))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		paths := int(env.Params["paths"].Int())
		k := float32(env.Params["k"].Float())
		spot, out := env.Bufs["spot"].F32s, env.Bufs["out"].F32s
		for t := 0; t < n && t < env.NThreads; t++ {
			s := spot[t]
			seed := int32(t)*1103515245 + 12345
			var acc float32
			for p := 0; p < paths; p++ {
				seed = seed*1664525 + 1013904223
				u := float32(seed&0x7FFFFF) / 8388608
				z := (u - 0.5) * 3.46
				st := s * float32(math.Exp(float64(float32(-0.045)+float32(0.3)*z)))
				pay := st - k
				if pay < 0 {
					pay = 0
				}
				acc += pay
			}
			out[t] = acc / float32(paths)
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 1024 * scale
		r := newPRNG(11)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n":     kpl.IntVal(int64(n)),
				"paths": kpl.IntVal(64),
				"k":     kpl.F32Val(25),
			},
			BufBytes: map[string]int{"spot": 4 * n, "out": 4 * n},
			Inputs: map[string][]byte{
				"spot": devmem.EncodeF32(r.f32Slice(n, 10, 50)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00010, // option batches read from files
	Coalescable:      false,
})
