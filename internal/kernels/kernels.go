// Package kernels implements the benchmark suite of the paper's evaluation —
// Go counterparts of the CUDA SDK applications of Fig. 11 plus the
// micro-workloads of Table 1 and Figs. 9–10. Every benchmark carries:
//
//   - a kpl program (the "guest binary": interpreted by the emulation back
//     end, analyzed for σ/µ/λ, dispatched by ΣVP);
//   - a native Go implementation (the compiled semantics the host GPU model
//     executes functionally — tests assert interpreter/native agreement);
//   - a workload generator producing deterministic inputs at any scale;
//   - application-level metadata for the Fig. 11 study: main-loop iteration
//     count, non-CUDA time on the VP (OpenGL and file I/O portions that ΣVP
//     does not accelerate), and whether the kernel's memory management
//     permits Kernel Coalescing (paper Section 5 names the exceptions).
package kernels

import (
	"fmt"
	"sort"

	"repro/internal/hostgpu"
	"repro/internal/kir"
	"repro/internal/kpl"
)

// Workload is one concrete problem instance for a benchmark.
type Workload struct {
	Grid              int
	Block             int
	SharedMemPerBlock int
	RegsPerThread     int

	Params map[string]kpl.Value

	// BufBytes gives the allocation size of every kernel buffer; Inputs
	// holds initial contents for those that have any (others start zeroed).
	BufBytes map[string]int
	Inputs   map[string][]byte

	// OutBufs are copied device-to-host after the kernel (the D2H legs).
	OutBufs []string

	// N is the problem size in elements (for reporting).
	N int
}

// Threads returns the launch width.
func (w *Workload) Threads() int { return w.Grid * w.Block }

// InBytes returns the total bytes of the H2D legs.
func (w *Workload) InBytes() int {
	t := 0
	for _, b := range w.Inputs {
		t += len(b)
	}
	return t
}

// OutBytes returns the total bytes of the D2H legs.
func (w *Workload) OutBytes() int {
	t := 0
	for _, name := range w.OutBufs {
		t += w.BufBytes[name]
	}
	return t
}

// Benchmark is one application of the suite.
type Benchmark struct {
	Name   string
	Kernel *kpl.Kernel
	Prog   *kir.Program

	// Native is the compiled semantics (nil → interpreter only).
	Native func(env *kpl.Env) error

	// MakeWorkload builds a deterministic problem instance; scale ≥ 1 grows
	// it (roughly linearly in work).
	MakeWorkload func(scale int) *Workload

	// Iterations is the application's GPU main-loop count (each iteration
	// performs the H2D → kernel → D2H sequence).
	Iterations int

	// NonCUDAVPSeconds is per-iteration time the application spends outside
	// CUDA on the VP — OpenGL rendering through Mesa, file I/O — which no
	// scenario accelerates (it bounds the Fig. 11 speedups).
	NonCUDAVPSeconds float64

	// CopyEachIteration marks streaming applications whose main loop copies
	// fresh input to the device every iteration (sorts, histograms,
	// scans). Iterative/visual applications load their data once and then
	// only launch kernels (the CUDA SDK norm), so their steady state is
	// kernel-dominated.
	CopyEachIteration bool

	// Coalescable reports whether identical instances of this kernel from
	// different VPs can be merged by Kernel Coalescing. The paper names
	// convolutionSeparable, dct8x8, SobelFilter, MonteCarlo, nbody and
	// smokeParticles as not benefiting, "mostly due to the way they access
	// and manage the memory".
	Coalescable bool
}

// NewLaunch builds a device launch for the workload. Buffer bindings are
// filled by the caller after allocating on a concrete device.
func (b *Benchmark) NewLaunch(w *Workload) *hostgpu.Launch {
	return &hostgpu.Launch{
		Kernel:            b.Kernel,
		Prog:              b.Prog,
		Grid:              w.Grid,
		Block:             w.Block,
		SharedMemPerBlock: w.SharedMemPerBlock,
		RegsPerThread:     w.RegsPerThread,
		Params:            w.Params,
		Native:            b.Native,
	}
}

var registry = map[string]*Benchmark{}

// register adds a benchmark at init time, analyzing its kernel. It panics on
// duplicate names or invalid kernels: the suite is static data and a broken
// entry is a programming error.
func register(b *Benchmark) *Benchmark {
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("kernels: duplicate benchmark %q", b.Name))
	}
	prog, err := kir.Analyze(b.Kernel)
	if err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", b.Name, err))
	}
	b.Prog = prog
	registry[b.Name] = b
	return b
}

// reanalyze re-lowers a benchmark whose kernel body was assembled
// programmatically after registration (e.g. shared sub-expressions).
func reanalyze(b *Benchmark) {
	prog, err := kir.Analyze(b.Kernel)
	if err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", b.Name, err))
	}
	b.Prog = prog
}

// Get returns the named benchmark.
func Get(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown benchmark %q", name)
	}
	return b, nil
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all benchmarks sorted by name.
func All() []*Benchmark {
	names := Names()
	out := make([]*Benchmark, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// ceilDiv returns ⌈a/b⌉ for positive operands.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// prng is a small deterministic generator for reproducible workloads.
type prng struct{ s uint32 }

func newPRNG(seed uint32) *prng {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &prng{s: seed}
}

func (p *prng) next() uint32 {
	p.s = p.s*1664525 + 1013904223
	return p.s
}

// f32 returns a float in [lo, hi).
func (p *prng) f32(lo, hi float64) float32 {
	u := float64(p.next()>>8) / float64(1<<24)
	return float32(lo + u*(hi-lo))
}

// i32 returns an int in [0, n).
func (p *prng) i32(n int32) int32 {
	if n <= 0 {
		return 0
	}
	return int32(p.next() % uint32(n))
}

// f32Slice fills a slice with values in [lo, hi).
func (p *prng) f32Slice(n int, lo, hi float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = p.f32(lo, hi)
	}
	return out
}

// f64Slice fills a slice with values in [lo, hi).
func (p *prng) f64Slice(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(p.f32(lo, hi))
	}
	return out
}

// i32Slice fills a slice with values in [0, n).
func (p *prng) i32Slice(count int, n int32) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = p.i32(n)
	}
	return out
}

// clampI builds the kpl expression min(max(e, lo), hi) on i32 operands.
func clampI(e kpl.Expr, lo, hi kpl.Expr) kpl.Expr {
	return kpl.Min(kpl.Max(e, lo), hi)
}

// clampInt is the native counterpart of clampI.
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
