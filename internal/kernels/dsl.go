package kernels

import "repro/internal/kpl"

// Local aliases keep the kernel definitions close to CUDA-source density.
var (
	ci, cf, cd = kpl.CI, kpl.CF, kpl.CD
	tid, nt    = kpl.TID, kpl.NT
	par, lv    = kpl.P, kpl.V

	add, sub, mul, div = kpl.Add, kpl.Sub, kpl.Mul, kpl.Div
	mod, minE, maxE    = kpl.Mod, kpl.Min, kpl.Max
	lt, le, gt, ge     = kpl.LT, kpl.LE, kpl.GT, kpl.GE
	shlE, shrE, andE   = kpl.Shl, kpl.Shr, kpl.And

	neg, abs      = kpl.Neg, kpl.Abs
	sqrtE, rsqrtE = kpl.Sqrt, kpl.Rsqrt
	expE, logE    = kpl.Exp, kpl.Log
	sinE, cosE    = kpl.Sin, kpl.Cos

	load, store, let = kpl.Load, kpl.Store, kpl.Let
	sel              = kpl.Sel
	toF32, toI32     = kpl.ToF32, kpl.ToI32
	forL, ifS, ifP   = kpl.For, kpl.If, kpl.IfProb
	atomAdd, brk     = kpl.AtomicAdd, kpl.Break
)

// eptExpr returns ⌈n/NT⌉ as an expression: the per-thread element count of a
// grid-stride loop whose bounds stay statically resolvable.
func eptExpr(n kpl.Expr) kpl.Expr {
	return div(add(n, sub(nt(), ci(1))), nt())
}

// gsIndex returns tid + j·NT, the grid-stride global index.
func gsIndex(j string) kpl.Expr {
	return add(tid(), mul(lv(j), nt()))
}
