package kernels

import (
	"math"

	"repro/internal/devmem"
	"repro/internal/kpl"
)

// The benchmarks in this file extend the suite beyond the paper's Fig. 11
// list with further CUDA SDK workloads, exercising instruction mixes the
// core set lacks (bit-manipulation generators, tree recombination,
// segment-local transforms, 2D stencils and scans).

// BinomialOptions prices options on a recombining binomial tree (CUDA SDK
// binomialOptions): each thread owns one option and sweeps the tree in a
// device workspace. FP32 loop-heavy with a triangular iteration space.
var BinomialOptions = register(&Benchmark{
	Name: "binomialOptions",
	Kernel: &kpl.Kernel{
		Name: "binomialOptions",
		Params: []kpl.ParamDecl{
			{Name: "n", T: kpl.I32},
			{Name: "steps", T: kpl.I32},
			{Name: "up", T: kpl.F32},
			{Name: "down", T: kpl.F32},
			{Name: "pu", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "spot", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "strike", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "ws", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.1},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("n")),
				let("s", load("spot", tid())),
				let("x", load("strike", tid())),
				let("base", mul(tid(), add(par("steps"), ci(1)))),
				// Terminal payoffs: s·up^i·down^(steps-i) − x, floored at 0.
				forL("leaves", "i", ci(0), add(par("steps"), ci(1)),
					let("price", lv("s")),
					forL("ups", "u", ci(0), lv("i"),
						let("price", mul(lv("price"), par("up"))),
					),
					forL("downs", "dcnt", lv("i"), par("steps"),
						let("price", mul(lv("price"), par("down"))),
					),
					store("ws", add(lv("base"), lv("i")), maxE(sub(lv("price"), lv("x")), cf(0))),
				),
				// Backward recombination.
				forL("levels", "lev", ci(0), par("steps"),
					let("width", sub(par("steps"), lv("lev"))),
					forL("nodes", "j", ci(0), lv("width"),
						let("vUp", load("ws", add(lv("base"), add(lv("j"), ci(1))))),
						let("vDn", load("ws", add(lv("base"), lv("j")))),
						store("ws", add(lv("base"), lv("j")),
							add(mul(par("pu"), lv("vUp")), mul(sub(cf(1), par("pu")), lv("vDn")))),
					),
				),
				store("out", tid(), load("ws", lv("base"))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		steps := int(env.Params["steps"].Int())
		up := float32(env.Params["up"].Float())
		down := float32(env.Params["down"].Float())
		pu := float32(env.Params["pu"].Float())
		spot, strike := env.Bufs["spot"].F32s, env.Bufs["strike"].F32s
		ws, out := env.Bufs["ws"].F32s, env.Bufs["out"].F32s
		for t := 0; t < n && t < env.NThreads; t++ {
			s, x := spot[t], strike[t]
			base := t * (steps + 1)
			for i := 0; i <= steps; i++ {
				price := s
				for u := 0; u < i; u++ {
					price *= up
				}
				for d := i; d < steps; d++ {
					price *= down
				}
				pay := price - x
				if pay < 0 {
					pay = 0
				}
				ws[base+i] = pay
			}
			for lev := 0; lev < steps; lev++ {
				width := steps - lev
				for j := 0; j < width; j++ {
					ws[base+j] = pu*ws[base+j+1] + (1-pu)*ws[base+j]
				}
			}
			out[t] = ws[base]
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n, steps := 512*scale, 16
		r := newPRNG(20)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n":     kpl.IntVal(int64(n)),
				"steps": kpl.IntVal(int64(steps)),
				"up":    kpl.F32Val(1.05),
				"down":  kpl.F32Val(0.9524),
				"pu":    kpl.F32Val(0.52),
			},
			BufBytes: map[string]int{
				"spot": 4 * n, "strike": 4 * n,
				"ws": 4 * n * (steps + 1), "out": 4 * n,
			},
			Inputs: map[string][]byte{
				"spot":   devmem.EncodeF32(r.f32Slice(n, 10, 50)),
				"strike": devmem.EncodeF32(r.f32Slice(n, 10, 50)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00010, // option batches read from files
	Coalescable:      true,
})

// QuasirandomGenerator produces Sobol-like quasirandom numbers through pure
// bit manipulation (CUDA SDK quasirandomGenerator) — the most Bit-heavy mix
// in the suite.
var QuasirandomGenerator = register(&Benchmark{
	Name: "quasirandomGenerator",
	Kernel: &kpl.Kernel{
		Name:   "quasirandomGenerator",
		Params: []kpl.ParamDecl{{Name: "n", T: kpl.I32}},
		Bufs: []kpl.BufDecl{
			{Name: "dirs", Elem: kpl.I32, Access: kpl.AccessBroadcast, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("n")),
				let("acc", ci(0)),
				let("g", kpl.Xor(tid(), shrE(tid(), ci(1)))), // Gray code
				forL("bits", "b", ci(0), ci(24),
					ifS(kpl.NE(andE(shrE(lv("g"), lv("b")), ci(1)), ci(0)),
						let("acc", kpl.Xor(lv("acc"), load("dirs", lv("b")))),
					),
				),
				store("out", tid(), div(toF32(lv("acc")), cf(16777216))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		dirs, out := env.Bufs["dirs"].I32s, env.Bufs["out"].F32s
		for t := 0; t < n && t < env.NThreads; t++ {
			var acc int32
			g := int32(t) ^ (int32(t) >> 1)
			for b := 0; b < 24; b++ {
				if (g>>b)&1 != 0 {
					acc ^= dirs[b]
				}
			}
			out[t] = float32(acc) / 16777216
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 16384 * scale
		dirs := make([]int32, 24)
		for b := range dirs {
			dirs[b] = 1 << (23 - b) // plain radical-inverse direction numbers
		}
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n": kpl.IntVal(int64(n)),
			},
			BufBytes: map[string]int{"dirs": 4 * 24, "out": 4 * n},
			Inputs: map[string][]byte{
				"dirs": devmem.EncodeI32(dirs),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:  10,
	Coalescable: true,
})

// DWTHaar1D computes one level of the Haar wavelet transform per segment
// (CUDA SDK dwtHaar1D): pairwise averages and differences.
var DWTHaar1D = register(&Benchmark{
	Name: "dwtHaar1D",
	Kernel: &kpl.Kernel{
		Name:   "dwtHaar1D",
		Params: []kpl.ParamDecl{{Name: "half", T: kpl.I32}},
		Bufs: []kpl.BufDecl{
			{Name: "in", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "approx", Elem: kpl.F32, Access: kpl.AccessSeq},
			{Name: "detail", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("half")),
				let("a", load("in", mul(tid(), ci(2)))),
				let("b", load("in", add(mul(tid(), ci(2)), ci(1)))),
				let("r", cf(0.70710678)),
				store("approx", tid(), mul(add(lv("a"), lv("b")), lv("r"))),
				store("detail", tid(), mul(sub(lv("a"), lv("b")), lv("r"))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		half := int(env.Params["half"].Int())
		in := env.Bufs["in"].F32s
		approx, detail := env.Bufs["approx"].F32s, env.Bufs["detail"].F32s
		const r = float32(0.70710678)
		for t := 0; t < half && t < env.NThreads; t++ {
			a, b := in[2*t], in[2*t+1]
			approx[t] = (a + b) * r
			detail[t] = (a - b) * r
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		half := 8192 * scale
		n := 2 * half
		r := newPRNG(21)
		return &Workload{
			Grid:  ceilDiv(half, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"half": kpl.IntVal(int64(half)),
			},
			BufBytes: map[string]int{"in": 4 * n, "approx": 4 * half, "detail": 4 * half},
			Inputs: map[string][]byte{
				"in": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
			},
			OutBufs: []string{"approx", "detail"},
		}
	},
	Iterations:        10,
	Coalescable:       true,
	CopyEachIteration: true,
})

// FastWalshTransform applies the Walsh–Hadamard butterfly within per-thread
// segments (CUDA SDK fastWalshTransform): additions and bit arithmetic.
var FastWalshTransform = register(&Benchmark{
	Name: "fastWalshTransform",
	Kernel: &kpl.Kernel{
		Name: "fastWalshTransform",
		Params: []kpl.ParamDecl{
			{Name: "seg", T: kpl.I32},  // segment length (power of two)
			{Name: "nseg", T: kpl.I32}, // segments
			{Name: "log2", T: kpl.I32}, // log2(seg)
		},
		Bufs: []kpl.BufDecl{
			{Name: "d", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("nseg")),
				let("base", mul(tid(), par("seg"))),
				forL("stages", "s", ci(0), par("log2"),
					let("hw", shlE(ci(1), lv("s"))),
					forL("pairs", "j", ci(0), shrE(par("seg"), ci(1)),
						// Butterfly index: group of hw, offset within group.
						let("grp", div(lv("j"), lv("hw"))),
						let("off", mod(lv("j"), lv("hw"))),
						let("i0", add(lv("base"), add(mul(lv("grp"), shlE(lv("hw"), ci(1))), lv("off")))),
						let("i1", add(lv("i0"), lv("hw"))),
						let("a", load("d", lv("i0"))),
						let("b", load("d", lv("i1"))),
						store("d", lv("i0"), add(lv("a"), lv("b"))),
						store("d", lv("i1"), sub(lv("a"), lv("b"))),
					),
				),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		seg := int(env.Params["seg"].Int())
		nseg := int(env.Params["nseg"].Int())
		log2 := int(env.Params["log2"].Int())
		d := env.Bufs["d"].F32s
		for t := 0; t < nseg && t < env.NThreads; t++ {
			base := t * seg
			for s := 0; s < log2; s++ {
				hw := 1 << s
				for j := 0; j < seg/2; j++ {
					grp, off := j/hw, j%hw
					i0 := base + grp*(hw<<1) + off
					i1 := i0 + hw
					a, b := d[i0], d[i1]
					d[i0], d[i1] = a+b, a-b
				}
			}
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		seg, log2 := 64, 6
		nseg := 256 * scale
		n := seg * nseg
		r := newPRNG(22)
		return &Workload{
			Grid:  ceilDiv(nseg, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"seg":  kpl.IntVal(int64(seg)),
				"nseg": kpl.IntVal(int64(nseg)),
				"log2": kpl.IntVal(int64(log2)),
			},
			BufBytes: map[string]int{"d": 4 * n},
			Inputs: map[string][]byte{
				"d": devmem.EncodeF32(r.f32Slice(n, -1, 1)),
			},
			OutBufs: []string{"d"},
		}
	},
	Iterations:        10,
	Coalescable:       true,
	CopyEachIteration: true,
})

// Scan computes per-segment inclusive prefix sums (CUDA SDK scan's
// per-block stage).
var Scan = register(&Benchmark{
	Name: "scan",
	Kernel: &kpl.Kernel{
		Name: "scan",
		Params: []kpl.ParamDecl{
			{Name: "seg", T: kpl.I32},
			{Name: "nseg", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "in", Elem: kpl.F32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("nseg")),
				let("base", mul(tid(), par("seg"))),
				let("acc", cf(0)),
				forL("elems", "j", ci(0), par("seg"),
					let("acc", add(lv("acc"), load("in", add(lv("base"), lv("j"))))),
					store("out", add(lv("base"), lv("j")), lv("acc")),
				),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		seg := int(env.Params["seg"].Int())
		nseg := int(env.Params["nseg"].Int())
		in, out := env.Bufs["in"].F32s, env.Bufs["out"].F32s
		for t := 0; t < nseg && t < env.NThreads; t++ {
			base := t * seg
			var acc float32
			for j := 0; j < seg; j++ {
				acc += in[base+j]
				out[base+j] = acc
			}
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		seg := 64
		nseg := 256 * scale
		n := seg * nseg
		r := newPRNG(23)
		return &Workload{
			Grid:  ceilDiv(nseg, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"seg":  kpl.IntVal(int64(seg)),
				"nseg": kpl.IntVal(int64(nseg)),
			},
			BufBytes: map[string]int{"in": 4 * n, "out": 4 * n},
			Inputs: map[string][]byte{
				"in": devmem.EncodeF32(r.f32Slice(n, 0, 1)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:        10,
	Coalescable:       true,
	CopyEachIteration: true,
})

// ConvolutionTexture applies a non-separable 5×5 stencil (CUDA SDK
// convolutionTexture): 25 clamped taps per pixel.
var ConvolutionTexture = register(&Benchmark{
	Name: "convolutionTexture",
	Kernel: &kpl.Kernel{
		Name: "convolutionTexture",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "img", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.08, ReadOnly: true},
			{Name: "coef", Elem: kpl.F32, Access: kpl.AccessBroadcast, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("acc", cf(0)),
				forL("ky", "ky", ci(0), ci(5),
					forL("kx", "kx", ci(0), ci(5),
						let("xx", clampI(add(lv("x"), sub(lv("kx"), ci(2))), ci(0), sub(par("w"), ci(1)))),
						let("yy", clampI(add(lv("y"), sub(lv("ky"), ci(2))), ci(0), sub(par("h"), ci(1)))),
						let("acc", add(lv("acc"),
							mul(load("coef", add(mul(lv("ky"), ci(5)), lv("kx"))),
								load("img", add(mul(lv("yy"), par("w")), lv("xx")))))),
					),
				),
				store("out", tid(), lv("acc")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		img, coef, out := env.Bufs["img"].F32s, env.Bufs["coef"].F32s, env.Bufs["out"].F32s
		for t := 0; t < w*h && t < env.NThreads; t++ {
			x, y := t%w, t/w
			var acc float32
			for ky := 0; ky < 5; ky++ {
				for kx := 0; kx < 5; kx++ {
					xx := clampInt(x+kx-2, 0, w-1)
					yy := clampInt(y+ky-2, 0, h-1)
					acc += coef[ky*5+kx] * img[yy*w+xx]
				}
			}
			out[t] = acc
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		coef := make([]float32, 25)
		var sum float32
		for i := range coef {
			dx := float32(i%5 - 2)
			dy := float32(i/5 - 2)
			coef[i] = float32(math.Exp(float64(-(dx*dx + dy*dy) / 4)))
			sum += coef[i]
		}
		for i := range coef {
			coef[i] /= sum
		}
		return imageWorkload(24, 256, 16*scale,
			map[string]int{"coef": 4 * 25},
			map[string][]byte{"coef": devmem.EncodeF32(coef)},
			nil, "out")
	},
	Iterations:  10,
	Coalescable: true,
})
