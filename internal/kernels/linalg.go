package kernels

import (
	"repro/internal/devmem"
	"repro/internal/kpl"
)

// MatrixMul is the double-precision matrix multiply of Table 1:
// C(m×n) = A(m×k)·B(k×n), one thread per output element. The CUDA original
// stages tiles through shared memory, so only a fraction of the accesses
// reach L2 (L2Fraction).
var MatrixMul = register(&Benchmark{
	Name: "matrixMul",
	Kernel: &kpl.Kernel{
		Name: "matrixMul",
		Params: []kpl.ParamDecl{
			{Name: "m", T: kpl.I32},
			{Name: "n", T: kpl.I32},
			{Name: "k", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "a", Elem: kpl.F64, Access: kpl.AccessSeq, L2Fraction: 1.0 / 16, ReadOnly: true},
			{Name: "b", Elem: kpl.F64, Access: kpl.AccessSeq, L2Fraction: 1.0 / 16, ReadOnly: true},
			{Name: "c", Elem: kpl.F64, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), mul(par("m"), par("n"))),
				let("row", div(tid(), par("n"))),
				let("col", mod(tid(), par("n"))),
				let("acc", cd(0)),
				forL("dotk", "kk", ci(0), par("k"),
					let("acc", add(lv("acc"),
						mul(load("a", add(mul(lv("row"), par("k")), lv("kk"))),
							load("b", add(mul(lv("kk"), par("n")), lv("col")))))),
				),
				store("c", tid(), lv("acc")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		m := int(env.Params["m"].Int())
		n := int(env.Params["n"].Int())
		k := int(env.Params["k"].Int())
		a, b, c := env.Bufs["a"].F64s, env.Bufs["b"].F64s, env.Bufs["c"].F64s
		for r := 0; r < m; r++ {
			for col := 0; col < n; col++ {
				var acc float64
				for kk := 0; kk < k; kk++ {
					acc += a[r*k+kk] * b[kk*n+col]
				}
				c[r*n+col] = acc
			}
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		return MatMulWorkload(16*scale, 64, 64)
	},
	Iterations:  10,
	Coalescable: true,
})

// MatMulWorkload builds an m×k by k×n double matrix multiply instance; the
// Table 1 experiment uses MatMulWorkload(320, 320, 320).
func MatMulWorkload(m, n, k int) *Workload {
	r := newPRNG(6)
	threads := m * n
	return &Workload{
		Grid:  ceilDiv(threads, 256),
		Block: 256,
		N:     threads,
		Params: map[string]kpl.Value{
			"m": kpl.IntVal(int64(m)),
			"n": kpl.IntVal(int64(n)),
			"k": kpl.IntVal(int64(k)),
		},
		BufBytes: map[string]int{"a": 8 * m * k, "b": 8 * k * n, "c": 8 * m * n},
		Inputs: map[string][]byte{
			"a": devmem.EncodeF64(r.f64Slice(m*k, -1, 1)),
			"b": devmem.EncodeF64(r.f64Slice(k*n, -1, 1)),
		},
		OutBufs: []string{"c"},
	}
}

// MergeSort approximates the CUDA SDK mergeSort's bottom level: each thread
// insertion-sorts its own segment in place. Comparison- and branch-heavy,
// nearly FP-free — the paper's lowest-speedup application (622×).
var MergeSort = register(&Benchmark{
	Name: "mergeSort",
	Kernel: &kpl.Kernel{
		Name: "mergeSort",
		Params: []kpl.ParamDecl{
			{Name: "seg", T: kpl.I32},
			{Name: "nseg", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "d", Elem: kpl.I32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("nseg")),
				let("base", mul(tid(), par("seg"))),
				forL("outer", "i", ci(1), par("seg"),
					let("key", load("d", add(lv("base"), lv("i")))),
					let("j", sub(lv("i"), ci(1))),
					forL("inner", "jj", ci(0), par("seg"),
						ifS(lt(lv("j"), ci(0)), brk()),
						let("cur", load("d", add(lv("base"), lv("j")))),
						ifS(le(lv("cur"), lv("key")), brk()),
						store("d", add(lv("base"), add(lv("j"), ci(1))), lv("cur")),
						let("j", sub(lv("j"), ci(1))),
					),
					store("d", add(lv("base"), add(lv("j"), ci(1))), lv("key")),
				),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		seg := int(env.Params["seg"].Int())
		nseg := int(env.Params["nseg"].Int())
		d := env.Bufs["d"].I32s
		for t := 0; t < env.NThreads && t < nseg; t++ {
			base := t * seg
			for i := 1; i < seg; i++ {
				key := d[base+i]
				j := i - 1
				for j >= 0 && d[base+j] > key {
					d[base+j+1] = d[base+j]
					j--
				}
				d[base+j+1] = key
			}
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		seg := 32
		threads := 256 * scale
		n := seg * threads
		r := newPRNG(7)
		return &Workload{
			Grid:  ceilDiv(threads, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"seg":  kpl.IntVal(int64(seg)),
				"nseg": kpl.IntVal(int64(threads)),
			},
			BufBytes: map[string]int{"d": 4 * n},
			Inputs: map[string][]byte{
				"d": devmem.EncodeI32(r.i32Slice(n, 1<<20)),
			},
			OutBufs: []string{"d"},
		}
	},
	Iterations:        14,
	Coalescable:       true,
	CopyEachIteration: true,
})

// StereoDisparity scans candidate disparities per pixel with a 4-sample SAD
// (CUDA SDK stereoDisparity). Integer-dominated: a low-speedup workload.
var StereoDisparity = register(&Benchmark{
	Name: "stereoDisparity",
	Kernel: &kpl.Kernel{
		Name: "stereoDisparity",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
			{Name: "maxd", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "left", Elem: kpl.I32, Access: kpl.AccessSeq, L2Fraction: 0.25, ReadOnly: true},
			{Name: "right", Elem: kpl.I32, Access: kpl.AccessSeq, L2Fraction: 0.25, ReadOnly: true},
			{Name: "disp", Elem: kpl.I32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			let("n", mul(par("w"), par("h"))),
			ifP(0.95, lt(tid(), lv("n")),
				let("x", mod(tid(), par("w"))),
				let("best", ci(0)),
				let("bestSAD", ci(0x7FFFFFFF)),
				forL("dscan", "dd", ci(0), par("maxd"),
					let("xs", maxE(sub(lv("x"), lv("dd")), ci(0))),
					let("o", sub(lv("xs"), lv("x"))), // clamped shift
					let("sad", ci(0)),
					forL("win", "ww", ci(0), ci(4),
						let("idx", clampI(add(tid(), lv("ww")), ci(0), sub(lv("n"), ci(1)))),
						let("idxr", clampI(add(add(tid(), lv("o")), lv("ww")), ci(0), sub(lv("n"), ci(1)))),
						let("sad", add(lv("sad"), abs(sub(load("left", lv("idx")), load("right", lv("idxr")))))),
					),
					ifS(lt(lv("sad"), lv("bestSAD")),
						let("bestSAD", lv("sad")),
						let("best", lv("dd")),
					),
				),
				store("disp", tid(), lv("best")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		maxd := int(env.Params["maxd"].Int())
		left, right, disp := env.Bufs["left"].I32s, env.Bufs["right"].I32s, env.Bufs["disp"].I32s
		n := w * h
		for t := 0; t < n && t < env.NThreads; t++ {
			x := t % w
			best, bestSAD := int32(0), int32(0x7FFFFFFF)
			for dd := 0; dd < maxd; dd++ {
				xs := x - dd
				if xs < 0 {
					xs = 0
				}
				o := xs - x
				var sad int32
				for ww := 0; ww < 4; ww++ {
					idx := clampInt(t+ww, 0, n-1)
					idxr := clampInt(t+o+ww, 0, n-1)
					dl := left[idx] - right[idxr]
					if dl < 0 {
						dl = -dl
					}
					sad += dl
				}
				if sad < bestSAD {
					bestSAD = sad
					best = int32(dd)
				}
			}
			disp[t] = best
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		w, h := 128, 16*scale
		n := w * h
		r := newPRNG(8)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"w":    kpl.IntVal(int64(w)),
				"h":    kpl.IntVal(int64(h)),
				"maxd": kpl.IntVal(16),
			},
			BufBytes: map[string]int{"left": 4 * n, "right": 4 * n, "disp": 4 * n},
			Inputs: map[string][]byte{
				"left":  devmem.EncodeI32(r.i32Slice(n, 256)),
				"right": devmem.EncodeI32(r.i32Slice(n, 256)),
			},
			OutBufs: []string{"disp"},
		}
	},
	Iterations:        8,
	Coalescable:       true,
	CopyEachIteration: true,
})

// SegmentationTree approximates segmentationTreeThrust's label-propagation
// phase: each thread repeatedly takes the minimum label among itself and two
// neighbours. File-driven in the SDK, hence the non-CUDA time.
var SegmentationTree = register(&Benchmark{
	Name: "segmentationTreeThrust",
	Kernel: &kpl.Kernel{
		Name: "segmentationTree",
		Params: []kpl.ParamDecl{
			{Name: "n", T: kpl.I32},
			{Name: "iters", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "labels", Elem: kpl.I32, Access: kpl.AccessSeq, ReadOnly: true},
			{Name: "out", Elem: kpl.I32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("n")),
				let("lab", load("labels", tid())),
				forL("prop", "it", ci(0), par("iters"),
					let("lnb", load("labels", clampI(sub(tid(), ci(1)), ci(0), sub(par("n"), ci(1))))),
					let("rnb", load("labels", clampI(add(tid(), ci(1)), ci(0), sub(par("n"), ci(1))))),
					let("lab", minE(lv("lab"), minE(lv("lnb"), lv("rnb")))),
				),
				store("out", tid(), lv("lab")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		n := int(env.Params["n"].Int())
		labels, out := env.Bufs["labels"].I32s, env.Bufs["out"].I32s
		for t := 0; t < n && t < env.NThreads; t++ {
			lab := labels[t]
			if l := labels[clampInt(t-1, 0, n-1)]; l < lab {
				lab = l
			}
			if r := labels[clampInt(t+1, 0, n-1)]; r < lab {
				lab = r
			}
			out[t] = lab
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		n := 8192 * scale
		r := newPRNG(9)
		return &Workload{
			Grid:  ceilDiv(n, 256),
			Block: 256,
			N:     n,
			Params: map[string]kpl.Value{
				"n":     kpl.IntVal(int64(n)),
				"iters": kpl.IntVal(8),
			},
			BufBytes: map[string]int{"labels": 4 * n, "out": 4 * n},
			Inputs: map[string][]byte{
				"labels": devmem.EncodeI32(r.i32Slice(n, 1<<24)),
			},
			OutBufs: []string{"out"},
		}
	},
	Iterations:        10,
	NonCUDAVPSeconds:  0.00012, // reads segmentation inputs from files
	Coalescable:       true,
	CopyEachIteration: true,
})
