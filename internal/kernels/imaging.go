package kernels

import (
	"math"

	"repro/internal/devmem"
	"repro/internal/kpl"
)

// imageWorkload builds a w×h float32 image instance shared by the imaging
// kernels.
func imageWorkload(seed uint32, w, h int, extraBufs map[string]int, extraIn map[string][]byte, params map[string]kpl.Value, out string) *Workload {
	n := w * h
	r := newPRNG(seed)
	bufs := map[string]int{"img": 4 * n, out: 4 * n}
	for k, v := range extraBufs {
		bufs[k] = v
	}
	inputs := map[string][]byte{"img": devmem.EncodeF32(r.f32Slice(n, 0, 255))}
	for k, v := range extraIn {
		inputs[k] = v
	}
	if params == nil {
		params = map[string]kpl.Value{}
	}
	params["w"] = kpl.IntVal(int64(w))
	params["h"] = kpl.IntVal(int64(h))
	return &Workload{
		Grid:     ceilDiv(n, 256),
		Block:    256,
		N:        n,
		Params:   params,
		BufBytes: bufs,
		Inputs:   inputs,
		OutBufs:  []string{out},
	}
}

// pixelXY emits statements computing x, y and the in-range guard for image
// kernels; body runs only for tid < w·h.
func pixelGuard(body ...kpl.Stmt) kpl.Stmt {
	pre := []kpl.Stmt{
		let("x", mod(tid(), par("w"))),
		let("y", div(tid(), par("w"))),
	}
	return ifP(0.95, lt(tid(), mul(par("w"), par("h"))), append(pre, body...)...)
}

// clampPixel builds the clamped image index load at (x+dx, y+dy).
func clampPixel(buf string, dx, dy int64) kpl.Expr {
	xx := clampI(add(lv("x"), ci(dx)), ci(0), sub(par("w"), ci(1)))
	yy := clampI(add(lv("y"), ci(dy)), ci(0), sub(par("h"), ci(1)))
	return load(buf, add(mul(yy, par("w")), xx))
}

// pixAt is the native counterpart of clampPixel.
func pixAt(img []float32, w, h, x, y int) float32 {
	return img[clampInt(y, 0, h-1)*w+clampInt(x, 0, w-1)]
}

// SobelFilter computes the Sobel gradient magnitude (CUDA SDK SobelFilter):
// 9 clamped neighbour loads per pixel; OpenGL display in the SDK. The paper
// lists it among the kernels not improved by the optimizations and the
// lowest optimized speedup (1098×).
var SobelFilter = register(&Benchmark{
	Name: "SobelFilter",
	Kernel: &kpl.Kernel{
		Name: "SobelFilter",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "img", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.2, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("gx", add(
					add(sub(clampPixel("img", 1, -1), clampPixel("img", -1, -1)),
						mul(cf(2), sub(clampPixel("img", 1, 0), clampPixel("img", -1, 0)))),
					sub(clampPixel("img", 1, 1), clampPixel("img", -1, 1)))),
				let("gy", add(
					add(sub(clampPixel("img", -1, 1), clampPixel("img", -1, -1)),
						mul(cf(2), sub(clampPixel("img", 0, 1), clampPixel("img", 0, -1)))),
					sub(clampPixel("img", 1, 1), clampPixel("img", 1, -1)))),
				store("out", tid(), minE(cf(255),
					sqrtE(add(mul(lv("gx"), lv("gx")), mul(lv("gy"), lv("gy")))))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		img, out := env.Bufs["img"].F32s, env.Bufs["out"].F32s
		for t := 0; t < w*h && t < env.NThreads; t++ {
			x, y := t%w, t/w
			gx := (pixAt(img, w, h, x+1, y-1) - pixAt(img, w, h, x-1, y-1)) +
				2*(pixAt(img, w, h, x+1, y)-pixAt(img, w, h, x-1, y)) +
				(pixAt(img, w, h, x+1, y+1) - pixAt(img, w, h, x-1, y+1))
			gy := (pixAt(img, w, h, x-1, y+1) - pixAt(img, w, h, x-1, y-1)) +
				2*(pixAt(img, w, h, x, y+1)-pixAt(img, w, h, x, y-1)) +
				(pixAt(img, w, h, x+1, y+1) - pixAt(img, w, h, x+1, y-1))
			m := float32(math.Sqrt(float64(gx*gx + gy*gy)))
			if m > 255 {
				m = 255
			}
			out[t] = m
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		return imageWorkload(12, 256, 16*scale, nil, nil, nil, "out")
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00025, // OpenGL display path through Mesa
	Coalescable:      false,
})

// DCT8x8 computes the 2D 8×8 discrete cosine transform per block (CUDA SDK
// dct8x8): one thread per output coefficient, a 64-tap cosine sum. Listed
// among the coalescing-unfriendly kernels.
var DCT8x8 = register(&Benchmark{
	Name: "dct8x8",
	Kernel: &kpl.Kernel{
		Name: "dct8x8",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "img", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.125, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("u", mod(lv("x"), ci(8))),
				let("v", mod(lv("y"), ci(8))),
				let("bx", sub(lv("x"), lv("u"))),
				let("by", sub(lv("y"), lv("v"))),
				let("acc", cf(0)),
				forL("dctY", "yy", ci(0), ci(8),
					forL("dctX", "xx", ci(0), ci(8),
						let("pix", load("img", add(mul(add(lv("by"), lv("yy")), par("w")), add(lv("bx"), lv("xx"))))),
						let("cu", cosE(mul(cf(math.Pi/16), mul(toF32(add(mul(ci(2), lv("xx")), ci(1))), toF32(lv("u")))))),
						let("cv", cosE(mul(cf(math.Pi/16), mul(toF32(add(mul(ci(2), lv("yy")), ci(1))), toF32(lv("v")))))),
						let("acc", add(lv("acc"), mul(lv("pix"), mul(lv("cu"), lv("cv"))))),
					),
				),
				store("out", tid(), mul(lv("acc"), cf(0.25))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		img, out := env.Bufs["img"].F32s, env.Bufs["out"].F32s
		for t := 0; t < w*h && t < env.NThreads; t++ {
			x, y := t%w, t/w
			u, v := x%8, y%8
			bx, by := x-u, y-v
			var acc float32
			for yy := 0; yy < 8; yy++ {
				for xx := 0; xx < 8; xx++ {
					pix := img[(by+yy)*w+(bx+xx)]
					cu := float32(math.Cos(float64(float32(math.Pi/16) * float32((2*xx+1)*u))))
					cv := float32(math.Cos(float64(float32(math.Pi/16) * float32((2*yy+1)*v))))
					acc += pix * (cu * cv)
				}
			}
			out[t] = acc * 0.25
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		return imageWorkload(13, 256, 16*scale, nil, nil, nil, "out")
	},
	Iterations:  10,
	Coalescable: false,
})

// ConvolutionSeparable applies a radius-8 1D filter along rows (CUDA SDK
// convolutionSeparable's row pass). The shared-memory apron makes it
// coalescing-unfriendly (paper Section 5).
var ConvolutionSeparable = register(&Benchmark{
	Name: "convolutionSeparable",
	Kernel: &kpl.Kernel{
		Name: "convolutionSeparable",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "img", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.1, ReadOnly: true},
			{Name: "coef", Elem: kpl.F32, Access: kpl.AccessBroadcast, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("acc", cf(0)),
				forL("taps", "k", ci(0), ci(17),
					let("xx", clampI(add(lv("x"), sub(lv("k"), ci(8))), ci(0), sub(par("w"), ci(1)))),
					let("acc", add(lv("acc"),
						mul(load("coef", lv("k")), load("img", add(mul(lv("y"), par("w")), lv("xx")))))),
				),
				store("out", tid(), lv("acc")),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		img, coef, out := env.Bufs["img"].F32s, env.Bufs["coef"].F32s, env.Bufs["out"].F32s
		for t := 0; t < w*h && t < env.NThreads; t++ {
			x, y := t%w, t/w
			var acc float32
			for k := 0; k < 17; k++ {
				xx := clampInt(x+k-8, 0, w-1)
				acc += coef[k] * img[y*w+xx]
			}
			out[t] = acc
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		coef := make([]float32, 17)
		var sum float32
		for i := range coef {
			d := float32(i - 8)
			coef[i] = float32(math.Exp(float64(-d * d / 18)))
			sum += coef[i]
		}
		for i := range coef {
			coef[i] /= sum
		}
		return imageWorkload(14, 256, 16*scale,
			map[string]int{"coef": 4 * 17},
			map[string][]byte{"coef": devmem.EncodeF32(coef)},
			nil, "out")
	},
	Iterations:  12,
	Coalescable: false,
})

// RecursiveGaussian runs the IIR Gaussian filter down each column (CUDA SDK
// recursiveGaussian): one thread per column, sequential in y. File/display
// bound in the SDK.
var RecursiveGaussian = register(&Benchmark{
	Name: "recursiveGaussian",
	Kernel: &kpl.Kernel{
		Name: "recursiveGaussian",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
			{Name: "a", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			// One thread per column: per-thread strides of w are coalesced
			// ACROSS threads (thread x touches img[y·w+x]), so the device
			// sees sequential lines.
			{Name: "img", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.5, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			ifP(0.95, lt(tid(), par("w")),
				let("prev", cf(0)),
				forL("col", "y", ci(0), par("h"),
					let("cur", load("img", add(mul(lv("y"), par("w")), tid()))),
					let("prev", add(mul(par("a"), lv("cur")), mul(sub(cf(1), par("a")), lv("prev")))),
					store("out", add(mul(lv("y"), par("w")), tid()), lv("prev")),
				),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		a := float32(env.Params["a"].Float())
		img, out := env.Bufs["img"].F32s, env.Bufs["out"].F32s
		for x := 0; x < w && x < env.NThreads; x++ {
			var prev float32
			for y := 0; y < h; y++ {
				cur := img[y*w+x]
				prev = a*cur + (1-a)*prev
				out[y*w+x] = prev
			}
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		w, h := 2048, 16*scale // one thread per column: wide images keep the device busy
		wl := imageWorkload(15, w, h, nil, nil, map[string]kpl.Value{
			"a": kpl.F32Val(0.25),
		}, "out")
		wl.Grid = ceilDiv(w, 256)
		return wl
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00010, // loads/saves PPM images
	Coalescable:      true,
})

// BicubicTexture resamples a scanline with Catmull-Rom weights (CUDA SDK
// bicubicTexture, 1D pass). File-driven and FP-heavy.
var BicubicTexture = register(&Benchmark{
	Name: "bicubicTexture",
	Kernel: &kpl.Kernel{
		Name: "bicubicTexture",
		Params: []kpl.ParamDecl{
			{Name: "w", T: kpl.I32},
			{Name: "h", T: kpl.I32},
			{Name: "zoom", T: kpl.F32},
		},
		Bufs: []kpl.BufDecl{
			{Name: "img", Elem: kpl.F32, Access: kpl.AccessSeq, L2Fraction: 0.5, ReadOnly: true},
			{Name: "out", Elem: kpl.F32, Access: kpl.AccessSeq},
		},
		Body: []kpl.Stmt{
			pixelGuard(
				let("sx", mul(toF32(lv("x")), par("zoom"))),
				let("fx", floorF32()),
				let("t", sub(lv("sx"), lv("fx"))),
				let("ix", toI32(lv("fx"))),
				// Catmull-Rom weights.
				let("w0", mul(cf(0.5), add(mul(lv("t"), add(mul(lv("t"), sub(cf(2), lv("t"))), cf(-1))), cf(0)))),
				let("w1", mul(cf(0.5), add(mul(mul(lv("t"), lv("t")), sub(mul(cf(3), lv("t")), cf(5))), cf(2)))),
				let("w2", mul(cf(0.5), mul(lv("t"), add(mul(lv("t"), sub(cf(4), mul(cf(3), lv("t")))), cf(1))))),
				let("w3", mul(cf(0.5), mul(mul(lv("t"), lv("t")), sub(lv("t"), cf(1))))),
				let("row", mul(lv("y"), par("w"))),
				let("p0", load("img", add(lv("row"), clampI(sub(lv("ix"), ci(1)), ci(0), sub(par("w"), ci(1)))))),
				let("p1", load("img", add(lv("row"), clampI(lv("ix"), ci(0), sub(par("w"), ci(1)))))),
				let("p2", load("img", add(lv("row"), clampI(add(lv("ix"), ci(1)), ci(0), sub(par("w"), ci(1)))))),
				let("p3", load("img", add(lv("row"), clampI(add(lv("ix"), ci(2)), ci(0), sub(par("w"), ci(1)))))),
				store("out", tid(),
					add(add(mul(lv("w0"), lv("p0")), mul(lv("w1"), lv("p1"))),
						add(mul(lv("w2"), lv("p2")), mul(lv("w3"), lv("p3"))))),
			),
		},
	},
	Native: func(env *kpl.Env) error {
		w := int(env.Params["w"].Int())
		h := int(env.Params["h"].Int())
		zoom := float32(env.Params["zoom"].Float())
		img, out := env.Bufs["img"].F32s, env.Bufs["out"].F32s
		for tdx := 0; tdx < w*h && tdx < env.NThreads; tdx++ {
			x, y := tdx%w, tdx/w
			sx := float32(x) * zoom
			fx := float32(math.Floor(float64(sx)))
			t := sx - fx
			ix := int(fx)
			w0 := float32(0.5) * (t*(t*(2-t)+-1) + 0)
			w1 := float32(0.5) * (t*t*(3*t-5) + 2)
			w2 := float32(0.5) * (t * (t*(4-3*t) + 1))
			w3 := float32(0.5) * (t * t * (t - 1))
			row := y * w
			p0 := img[row+clampInt(ix-1, 0, w-1)]
			p1 := img[row+clampInt(ix, 0, w-1)]
			p2 := img[row+clampInt(ix+1, 0, w-1)]
			p3 := img[row+clampInt(ix+2, 0, w-1)]
			out[tdx] = (w0*p0 + w1*p1) + (w2*p2 + w3*p3)
		}
		return nil
	},
	MakeWorkload: func(scale int) *Workload {
		return imageWorkload(16, 256, 16*scale, nil, nil, map[string]kpl.Value{
			"zoom": kpl.F32Val(0.8),
		}, "out")
	},
	Iterations:       10,
	NonCUDAVPSeconds: 0.00010, // reads textures from files
	Coalescable:      true,
})

// floorF32 returns floor(sx) as an expression (helper keeps the bicubic body
// readable).
func floorF32() kpl.Expr { return kpl.Floor(lv("sx")) }
