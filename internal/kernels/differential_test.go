package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/kpl"
	"repro/internal/kpl/kplgen"
)

// TestSuiteKernelsCompile asserts that every benchmark kernel is covered by
// the compiler — none silently falls back to the interpreter. Without this,
// the differential tests below could pass vacuously by comparing the
// interpreter against itself.
func TestSuiteKernelsCompile(t *testing.T) {
	for _, b := range All() {
		if _, err := kpl.Compile(b.Kernel); err != nil {
			t.Errorf("%s: does not compile: %v", b.Name, err)
		}
	}
}

// TestCompiledMatchesInterpreterSuite runs every benchmark of the suite
// through the reference interpreter and the compiled engine across three
// launch geometries and worker counts {1, 4}, asserting bit-identical
// buffers, statistics, and errors. This is the hard invariant of the
// compiled engine: no caller can observe which engine executed a kernel.
func TestCompiledMatchesInterpreterSuite(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.MakeWorkload(1)
			env := buildEnv(t, b, w)
			n := w.Threads()
			// Three geometries: the workload's own blocking, one single
			// block, and a deliberately ragged block size.
			for _, blockSize := range []int{w.Block, n, 13} {
				for _, workers := range []int{1, 4} {
					if err := kplgen.CheckDiff(b.Kernel, env, blockSize, workers); err != nil {
						t.Fatalf("bs=%d workers=%d: %v", blockSize, workers, err)
					}
				}
			}
		})
	}
}

// TestRandomKernelsDifferential decodes pseudo-random byte strings into
// valid kernels (the same generator the fuzzer uses) and checks
// interpreter/compiled bit-identity on each. Random kernels freely hit the
// engines' error paths — out-of-range accesses, unbound names, undefined
// variables — so this doubles as an error-identity test.
func TestRandomKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5167a))
	decoded, compiled := 0, 0
	for i := 0; i < 600; i++ {
		data := make([]byte, 24+rng.Intn(160))
		rng.Read(data)
		k, env, ok := kplgen.Decode(data)
		if !ok {
			continue
		}
		decoded++
		if _, err := kpl.Compile(k); err == nil {
			compiled++
		}
		// Serial comparison only: random kernels may read across block
		// boundaries, where parallel shadow-buffer semantics legitimately
		// differ from the serial thread order.
		if err := kplgen.CheckDiff(k, env, 8, 1); err != nil {
			t.Fatalf("seed %d: %v\nkernel:\n%s", i, err, k.String())
		}
	}
	if decoded == 0 {
		t.Fatal("no random kernels decoded")
	}
	// Guard against vacuity: a healthy fraction must take the compiled path.
	if compiled*4 < decoded {
		t.Fatalf("only %d/%d random kernels compiled — generator or compiler regressed", compiled, decoded)
	}
	t.Logf("%d random kernels, %d compiled, %d interpreted", decoded, compiled, decoded-compiled)
}

// FuzzCompiledVsInterp is the open-ended version of the differential test:
// any byte string decodes to a valid kernel plus environment, and the fuzzer
// fails on any divergence between the interpreter and the compiled engine in
// buffers, statistics, or error text. The corpus is seeded with the encoded
// benchmark suite so fuzzing starts from realistic kernel shapes.
//
// Run with: go test -fuzz FuzzCompiledVsInterp ./internal/kernels
func FuzzCompiledVsInterp(f *testing.F) {
	for _, b := range All() {
		w := b.MakeWorkload(1)
		f.Add(kplgen.Encode(b.Kernel, w.Threads()))
	}
	f.Add([]byte{2, 1, 0, 3, 1, 1, 2, 0, 5})
	f.Add([]byte{0, 0, 0, 3, 3, 0, 1, 7, 0, 1, 5, 0, 1, 2})
	// Regression: this input once decoded to a float-typed loop bound whose
	// NaN defeated the generator's Mod clamp, hanging both engines for ~2^63
	// iterations (see clampBound in kplgen).
	f.Add([]byte("\x01\x00\x02\x01\x01\x00\x01\x01\x00\x03\x00\x10K"))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, env, ok := kplgen.Decode(data)
		if !ok {
			return // only empty input fails to decode
		}
		if err := kplgen.CheckDiff(k, env, 8, 1); err != nil {
			t.Fatalf("%v\nkernel:\n%s", err, k.String())
		}
	})
}
