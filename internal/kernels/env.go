package kernels

import (
	"fmt"

	"repro/internal/devmem"
	"repro/internal/kpl"
)

// BuildEnv materializes a workload's buffers into an execution environment
// for b.Kernel: every declared buffer is allocated at the workload's size and
// seeded with the workload's input bytes. Parameters are shared with the
// workload, not copied.
func BuildEnv(b *Benchmark, w *Workload) (*kpl.Env, error) {
	env := &kpl.Env{NThreads: w.Threads(), Params: w.Params, Bufs: map[string]*kpl.Buffer{}}
	for _, decl := range b.Kernel.Bufs {
		size, ok := w.BufBytes[decl.Name]
		if !ok {
			return nil, fmt.Errorf("%s: workload missing buffer %q", b.Name, decl.Name)
		}
		raw := make([]byte, size)
		if in, ok := w.Inputs[decl.Name]; ok {
			copy(raw, in)
		}
		env.Bufs[decl.Name] = devmem.BufferFromBytes(decl.Elem, raw)
	}
	return env, nil
}
