package cpumodel

// Times are in seconds; instruction counts are canonical instructions.

import "repro/internal/arch"

// ScalarTime returns the time to run instr canonical instructions as
// natively-compiled scalar code on the CPU, including the binary-translation
// slowdown when the descriptor represents a VP guest.
func ScalarTime(c *arch.CPU, instr float64) float64 {
	if instr <= 0 {
		return 0
	}
	return instr * c.ScalarCPI / c.ClockHz() * c.BTScalarSlowdown
}

// perThreadOverheadInstr models the thread-scheduling work device emulation
// spends per simulated GPU thread (context switch, index setup).
const perThreadOverheadInstr = 40

// EmulTime returns the time to run a GPU kernel with canonical instruction
// vector sigma across threads simulated threads through device emulation on
// the CPU (nvcc -deviceemu style: the kernel is compiled for the CPU and
// every GPU thread runs sequentially, with scheduling overhead per thread).
// Per-class emulation costs make FP-heavy kernels disproportionally slow to
// emulate, which is why they enjoy the largest ΣVP speedups (Section 5).
func EmulTime(c *arch.CPU, sigma arch.ClassVec, threads int) float64 {
	if sigma.Sum() <= 0 && threads <= 0 {
		return 0
	}
	weights := c.EmulClassCPI
	if weights.Sum() == 0 {
		for i := range weights {
			weights[i] = 1
		}
	}
	cycles := sigma.Dot(weights) * c.EmulCPI
	cycles += perThreadOverheadInstr * float64(threads) * c.EmulCPI
	return cycles / c.ClockHz() * c.BTEmulSlowdown
}

// MemcpyTime returns the time the CPU spends moving n bytes (the memcpy
// portions of an emulated GPU program).
func MemcpyTime(c *arch.CPU, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / (c.MemBWGBps * 1e9) * c.BTScalarSlowdown
}
