// Package cpumodel times CPU-side execution for the paper's baselines
// (Table 1): plain scalar code compiled natively ("C"), device-emulated GPU
// kernels ("CUDA Emul."), both on the physical host CPU and inside a QEMU
// virtual platform whose dynamic binary translation multiplies every cycle.
//
// The models are analytic, not emulated: cycle counts derive from the
// kernel's instruction mix (internal/kir) and the configured CPU
// parameters, so the baseline columns regenerate deterministically.
package cpumodel
