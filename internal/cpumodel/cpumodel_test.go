package cpumodel

import (
	"math"
	"testing"

	"repro/internal/arch"
)

func TestScalarTime(t *testing.T) {
	host := arch.HostXeon()
	got := ScalarTime(&host, 2.9e9)
	want := 2.9e9 * host.ScalarCPI / host.ClockHz()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ScalarTime = %v, want %v", got, want)
	}
	if ScalarTime(&host, 0) != 0 || ScalarTime(&host, -1) != 0 {
		t.Error("non-positive instr should cost nothing")
	}
}

func TestVPSlowdownApplies(t *testing.T) {
	host := arch.HostXeon()
	vp := arch.ARMVersatile()
	instr := 1e9
	var sigma arch.ClassVec
	sigma[arch.FP64] = instr
	if r := ScalarTime(&vp, instr) / ScalarTime(&host, instr); math.Abs(r-vp.BTScalarSlowdown) > 1e-9 {
		t.Errorf("scalar BT slowdown = %v, want %v", r, vp.BTScalarSlowdown)
	}
	if r := EmulTime(&vp, sigma, 1000) / EmulTime(&host, sigma, 1000); math.Abs(r-vp.BTEmulSlowdown) > 1e-9 {
		t.Errorf("emul BT slowdown = %v, want %v", r, vp.BTEmulSlowdown)
	}
	if r := MemcpyTime(&vp, 1<<20) / MemcpyTime(&host, 1<<20); math.Abs(r-vp.BTScalarSlowdown) > 1e-9 {
		t.Errorf("memcpy BT slowdown = %v, want %v", r, vp.BTScalarSlowdown)
	}
}

func TestEmulPerThreadOverhead(t *testing.T) {
	host := arch.HostXeon()
	var sigma arch.ClassVec
	sigma[arch.Int] = 1e6
	// Same instruction count, more threads → more time.
	few := EmulTime(&host, sigma, 100)
	many := EmulTime(&host, sigma, 100000)
	if many <= few {
		t.Errorf("thread overhead missing: %v vs %v", many, few)
	}
	if EmulTime(&host, arch.ClassVec{}, 0) != 0 {
		t.Error("empty kernel should cost nothing")
	}
}

func TestEmulCostsMoreThanScalar(t *testing.T) {
	host := arch.HostXeon()
	var sigma arch.ClassVec
	sigma[arch.Int] = 1e9
	if EmulTime(&host, sigma, 0) <= ScalarTime(&host, 1e9) {
		t.Error("device emulation should cost more than scalar execution")
	}
}

func TestFPEmulationCostsMore(t *testing.T) {
	host := arch.HostXeon()
	var fp, iv arch.ClassVec
	fp[arch.FP64] = 1e8
	iv[arch.Int] = 1e8
	if EmulTime(&host, fp, 0) <= EmulTime(&host, iv, 0) {
		t.Error("FP64 emulation should cost more than integer emulation")
	}
	// A CPU without per-class weights falls back to the scalar EmulCPI.
	flat := host
	flat.EmulClassCPI = arch.ClassVec{}
	if EmulTime(&flat, fp, 0) != EmulTime(&flat, iv, 0) {
		t.Error("flat CPI should ignore class mix")
	}
}

func TestMemcpyTime(t *testing.T) {
	host := arch.HostXeon()
	if MemcpyTime(&host, 0) != 0 || MemcpyTime(&host, -1) != 0 {
		t.Error("empty memcpy should cost nothing")
	}
	got := MemcpyTime(&host, 1<<30)
	want := float64(1<<30) / (host.MemBWGBps * 1e9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MemcpyTime = %v, want %v", got, want)
	}
}
