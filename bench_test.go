package repro

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/coalesce"
	"repro/internal/devmem"
	"repro/internal/emul"
	"repro/internal/experiments"
	"repro/internal/hostgpu"
	"repro/internal/kernels"
	"repro/internal/kir"
	"repro/internal/kpl"
	"repro/internal/profile"
	"repro/internal/sched"
)

// -workers sizes the experiment-harness pool for the whole bench suite
// (0 = one worker per CPU, 1 = serial). Reported simulated metrics are
// identical for every value.
var benchWorkers = flag.Int("workers", 0, "experiment-harness worker pool size (0 = NumCPU, 1 = serial)")

func TestMain(m *testing.M) {
	flag.Parse()
	experiments.SetWorkers(*benchWorkers)
	os.Exit(m.Run())
}

// --- One benchmark per paper table/figure. Each runs the full experiment
// harness; the headline simulated metrics are attached via ReportMetric so
// `go test -bench` output shows the reproduced numbers next to the harness
// cost.

// BenchmarkTable1 regenerates Table 1 (matrix multiplication across six
// execution configurations).
func BenchmarkTable1(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Row("Emul. on VP").Ratio, "emulVP-ratio")
	b.ReportMetric(last.Row("This work").Ratio, "sigmaVP-ratio")
}

// BenchmarkFig9a regenerates the kernel-length interleaving sweep.
func BenchmarkFig9a(b *testing.B) {
	var last *experiments.Fig9aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9a()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	peak := 0.0
	for _, p := range last.Points {
		if p.Speedup > peak {
			peak = p.Speedup
		}
	}
	b.ReportMetric(peak, "peak-speedup")
}

// BenchmarkFig9b regenerates the N-programs interleaving sweep.
func BenchmarkFig9b(b *testing.B) {
	var last *experiments.Fig9bResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9b()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Points[len(last.Points)-1].Speedup, "speedup-at-32")
}

// BenchmarkFig10a regenerates the coalescing-effectiveness sweep.
func BenchmarkFig10a(b *testing.B) {
	var last *experiments.Fig10aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10a()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Point(16).Speedup, "speedup-at-16")
	b.ReportMetric(last.Point(64).Speedup, "speedup-at-64")
}

// BenchmarkFig10b regenerates the grid-size staircase.
func BenchmarkFig10b(b *testing.B) {
	var last *experiments.Fig10bResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10b()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Point(16).TimeMS/last.Point(8).TimeMS, "step-ratio-16v8")
}

// BenchmarkFig11 regenerates the 28-application, 8-VP comparison.
func BenchmarkFig11(b *testing.B) {
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(8)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	minP, maxO := 1e18, 0.0
	for _, row := range last.Rows {
		if row.SpeedupPlain < minP {
			minP = row.SpeedupPlain
		}
		if row.SpeedupOpt > maxO {
			maxO = row.SpeedupOpt
		}
	}
	b.ReportMetric(minP, "min-plain-speedup")
	b.ReportMetric(maxO, "max-opt-speedup")
}

// BenchmarkFig12 regenerates the timing-estimation ladder.
func BenchmarkFig12(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(8)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	worst := 0.0
	for _, row := range last.Rows {
		if d := row.C2 - 1; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	b.ReportMetric(worst, "worst-C2-error")
}

// BenchmarkFig13 regenerates the power-estimation comparison.
func BenchmarkFig13(b *testing.B) {
	var last *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(8)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	worst := 0.0
	for _, row := range last.Rows {
		e := row.RelativeErr
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
	}
	b.ReportMetric(worst, "worst-power-error")
}

// BenchmarkMultiGPUScaling runs the multi-GPU serving study (16 VPs, mixed
// workload, 1/2/4 devices) and reports the 4-device speedup and the worst
// per-device compute utilization — the BENCH_7 headline numbers.
func BenchmarkMultiGPUScaling(b *testing.B) {
	var last *experiments.MultiGPUResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MultiGPUScaling(16, 8, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	p4 := last.Points[len(last.Points)-1]
	b.ReportMetric(p4.Speedup, "4dev-speedup")
	minU := 1.0
	for _, u := range p4.Utilization {
		if u < minU {
			minU = u
		}
	}
	b.ReportMetric(minU, "4dev-min-utilization")
}

// BenchmarkMultiServiceWallClock measures the host time of the 4-device
// MultiGPUScaling study point across the two axes pipelined execution is
// about: GOMAXPROCS (can the host run devices concurrently) × pipeline (does
// the farm try to). On a multi-core host, gomaxprocs=4/pipeline=true must
// beat gomaxprocs=4/pipeline=false by roughly the device count; the
// gomaxprocs=1 rows pin single-core behavior (pipelining must not slow a
// serial host beyond scheduling noise). Simulated results are identical in
// all four cells — TestMultiGPUScalingPipelineEquivalence pins that
// byte-for-byte.
func BenchmarkMultiServiceWallClock(b *testing.B) {
	for _, procs := range []int{1, 4} {
		for _, pipeline := range []bool{false, true} {
			name := fmt.Sprintf("gomaxprocs=%d/pipeline=%v", procs, pipeline)
			b.Run(name, func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := experiments.MultiGPUScalingOpt(16, 8, []int{4}, pipeline)
					if err != nil {
						b.Fatal(err)
					}
					if r.Points[0].MakespanSec <= 0 {
						b.Fatal("no simulated time elapsed")
					}
				}
			})
		}
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out: the
// dispatcher baseline vs each optimization in isolation on a mixed 8-VP
// iteration.

func ablationBatch(b *testing.B, g *hostgpu.GPU) []*sched.Job {
	b.Helper()
	bench, err := kernels.Get("vectorAdd")
	if err != nil {
		b.Fatal(err)
	}
	var batch []*sched.Job
	const n = 1 << 16
	payload := make([]byte, 4*n)
	for vpID := 0; vpID < 8; vpID++ {
		bind := map[string]devmem.Ptr{}
		for _, name := range []string{"a", "b", "out"} {
			ptr, err := g.Mem.Alloc(4 * n)
			if err != nil {
				b.Fatal(err)
			}
			bind[name] = ptr
		}
		l := &hostgpu.Launch{
			Kernel: bench.Kernel, Prog: bench.Prog,
			Grid: 8, Block: 256,
			Params:   map[string]kpl.Value{"n": kpl.IntVal(n)},
			Bindings: bind,
		}
		batch = append(batch,
			sched.NewH2D(vpID, vpID, bind["a"], 0, payload),
			sched.NewH2D(vpID, vpID, bind["b"], 0, payload))
		kj := sched.NewKernel(vpID, vpID, l)
		kj.Coalescable = true
		batch = append(batch, kj, sched.NewD2H(vpID, vpID, bind["out"], 0, 4*n))
	}
	return batch
}

func runAblation(b *testing.B, serialize bool, policy sched.Policy, coalesceOn bool) {
	b.Helper()
	var makespan float64
	for i := 0; i < b.N; i++ {
		g := hostgpu.New(arch.Quadro4000(), 1<<30)
		g.Mode = hostgpu.ExecTimingOnly
		g.Serialize = serialize
		batch := ablationBatch(b, g)
		if coalesceOn {
			batch = coalesce.Apply(g, batch)
		}
		for _, j := range sched.Plan(batch, policy) {
			if err := j.Run(g); err != nil {
				b.Fatal(err)
			}
			if !j.Done() {
				j.Finish(nil)
			}
		}
		makespan = g.Sync()
	}
	b.ReportMetric(makespan*1e3, "simulated-ms")
}

func BenchmarkAblationBaseline(b *testing.B) {
	runAblation(b, true, sched.PolicyFIFO, false)
}

func BenchmarkAblationInterleaveOnly(b *testing.B) {
	runAblation(b, false, sched.PolicyInterleave, false)
}

func BenchmarkAblationCoalesceOnly(b *testing.B) {
	runAblation(b, true, sched.PolicyFIFO, true)
}

func BenchmarkAblationBoth(b *testing.B) {
	runAblation(b, false, sched.PolicyInterleave, true)
}

// --- Substrate micro-benchmarks: the real wall-clock cost of interpretation
// vs native execution (the emulation-vs-ΣVP gap is genuine, not only
// modeled), σ derivation, the DES timing model, and a full emulated launch.

func vecAddEnv(b *testing.B, n int) (*kernels.Benchmark, *kpl.Env) {
	b.Helper()
	bench, err := kernels.Get("vectorAdd")
	if err != nil {
		b.Fatal(err)
	}
	env := kpl.NewEnv(n).SetInt("n", int64(n)).
		Bind("a", kpl.NewBuffer(kpl.F32, n)).
		Bind("b", kpl.NewBuffer(kpl.F32, n)).
		Bind("out", kpl.NewBuffer(kpl.F32, n))
	return bench, env
}

// BenchmarkInterpreterVectorAdd measures the kpl tree-walking interpreter
// (the reference execution engine) on a 64k-element vectorAdd.
func BenchmarkInterpreterVectorAdd(b *testing.B) {
	bench, env := vecAddEnv(b, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Kernel.InterpretAll(env, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelExec compares the tree-walking interpreter against the
// compiled slot-indexed engine on representative kernels, with and without
// statistics collection. The compiled/interp ratio is the headline number of
// the compiled-engine optimisation (BENCH_3.json).
func BenchmarkKernelExec(b *testing.B) {
	for _, name := range []string{"vectorAdd", "BlackScholes", "reduction"} {
		bench, err := kernels.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		w := bench.MakeWorkload(1)
		env, err := kernels.BuildEnv(bench, w)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := kpl.Compile(bench.Kernel); err != nil {
			b.Fatalf("%s: does not compile: %v", name, err)
		}
		run := func(b *testing.B, exec func(*kpl.Env, *kpl.Stats) error, st *kpl.Stats) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st != nil {
					*st = *kpl.NewStats()
				}
				if err := exec(env, st); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(name+"/interp", func(b *testing.B) {
			run(b, bench.Kernel.InterpretAll, nil)
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			run(b, bench.Kernel.ExecAll, nil)
		})
		b.Run(name+"/interp-stats", func(b *testing.B) {
			run(b, bench.Kernel.InterpretAll, kpl.NewStats())
		})
		b.Run(name+"/compiled-stats", func(b *testing.B) {
			run(b, bench.Kernel.ExecAll, kpl.NewStats())
		})
	}
}

// BenchmarkInterpreterParallelVectorAdd measures the block-parallel
// interpreter on the same workload (0 = one worker per CPU core).
func BenchmarkInterpreterParallelVectorAdd(b *testing.B) {
	bench, env := vecAddEnv(b, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Kernel.ExecBlocks(env, nil, 256, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeVectorAdd measures the compiled semantics on the same
// workload — the wall-clock interpreter/native gap underlying Table 1.
func BenchmarkNativeVectorAdd(b *testing.B) {
	bench, env := vecAddEnv(b, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Native(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSigmaDerivation measures Eq. 1's static σ derivation.
func BenchmarkSigmaDerivation(b *testing.B) {
	bench, err := kernels.Get("BlackScholes")
	if err != nil {
		b.Fatal(err)
	}
	g := arch.TegraK1()
	w := bench.MakeWorkload(8)
	l := kir.Launch{NThreads: w.Threads(), Params: w.Params}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Prog.Sigma(&g, l, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelTimingModel measures one evaluation of the DES kernel
// timing model.
func BenchmarkKernelTimingModel(b *testing.B) {
	g := arch.Quadro4000()
	var per arch.ClassVec
	per[arch.FP32] = 512
	per[arch.Ld] = 128
	shape := profile.LaunchShape{Grid: 256, Block: 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hostgpu.KernelTiming(&g, shape, per, nil)
	}
}

// BenchmarkEmulatedLaunch measures a full emulated kernel launch (bind,
// interpret, write back, price).
func BenchmarkEmulatedLaunch(b *testing.B) {
	d := emul.New(arch.HostXeon(), 1<<24)
	bench, err := kernels.Get("vectorAdd")
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	w := bench.MakeWorkload(1)
	_ = w
	l := &hostgpu.Launch{
		Kernel: bench.Kernel, Prog: bench.Prog,
		Grid: (n + 511) / 512, Block: 512,
		Params:   map[string]kpl.Value{"n": kpl.IntVal(n)},
		Bindings: map[string]devmem.Ptr{},
	}
	for _, name := range []string{"a", "b", "out"} {
		ptr, err := d.Mem.Alloc(4 * n)
		if err != nil {
			b.Fatal(err)
		}
		l.Bindings[name] = ptr
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Launch(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesceMerge measures a full 8-way merge (gather, merged launch,
// scatter) on the device model.
func BenchmarkCoalesceMerge(b *testing.B) {
	bench, err := kernels.Get("vectorAdd")
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	for i := 0; i < b.N; i++ {
		g := hostgpu.New(arch.Quadro4000(), 1<<28)
		g.Mode = hostgpu.ExecTimingOnly
		var members []*sched.Job
		for vpID := 0; vpID < 8; vpID++ {
			bind := map[string]devmem.Ptr{}
			for _, name := range []string{"a", "b", "out"} {
				ptr, err := g.Mem.Alloc(4 * n)
				if err != nil {
					b.Fatal(err)
				}
				bind[name] = ptr
			}
			l := &hostgpu.Launch{
				Kernel: bench.Kernel, Prog: bench.Prog,
				Grid: 1, Block: 512,
				Params:   map[string]kpl.Value{"n": kpl.IntVal(n)},
				Bindings: bind,
			}
			j := sched.NewKernel(vpID, vpID, l)
			j.Coalescable = true
			members = append(members, j)
		}
		if err := coalesce.Merge(g, members).Run(g); err != nil {
			b.Fatal(err)
		}
	}
}
