package repro

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cudart"
	"repro/internal/devmem"
	"repro/internal/experiments"
	"repro/internal/ipc"
	"repro/internal/kernels"
	"repro/internal/vp"
)

// benchEcho answers every request from static state: the benchmark measures
// transport cost (encode, frame, syscall, demux), not simulation cost.
func benchEcho(vpID int, req any) any {
	switch r := req.(type) {
	case ipc.MallocReq:
		return ipc.MallocResp{Ptr: devmem.Ptr(r.Size)}
	case ipc.D2HReq:
		return ipc.D2HResp{Data: make([]byte, r.N), End: 1}
	default:
		return ipc.OKResp{End: 1}
	}
}

// BenchmarkIPCRoundtrip measures one guest H2D→launch→D2H cycle over
// loopback TCP for each wire codec, serially (one call in flight) and
// pipelined (many goroutines sharing one connection). The binary codec's
// allocs/op is the zero-allocation contract; the gob/serial row is the
// pre-optimization baseline.
func BenchmarkIPCRoundtrip(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := ipc.Serve(l, benchEcho)
	defer srv.Close()

	payload := make([]byte, 4096)
	launch := ipc.LaunchReq{
		Kernel: "vectorAdd", Grid: 8, Block: 256,
		Bindings: map[string]devmem.Ptr{"a": 0x100, "b": 0x200, "out": 0x300},
	}
	cycle := func(c ipc.Client) error {
		if _, err := c.Call(ipc.H2DReq{Dst: 0x100, Data: payload}); err != nil {
			return err
		}
		if _, err := c.Call(launch); err != nil {
			return err
		}
		_, err := c.Call(ipc.D2HReq{Src: 0x300, N: 64})
		return err
	}

	for _, codec := range []ipc.CodecKind{ipc.CodecGob, ipc.CodecBinary} {
		c, err := ipc.DialWithOptions(srv.Addr().String(), 1, ipc.DialOptions{Codec: codec})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/serial", codec), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := cycle(c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/pipelined", codec), func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(32)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := cycle(c); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		c.Close()
	}
}

// BenchmarkRemoteFig11 is the remote-mode cousin of BenchmarkFig11: a fleet
// of VPs drives real guest traffic (H2D → launch → D2H per iteration)
// through the full TCP IPC stack into a live service, once per codec. It is
// the end-to-end number the wire-protocol optimization is judged on.
func BenchmarkRemoteFig11(b *testing.B) {
	const vps = 4
	const iters = 4
	bench, err := kernels.Get("vectorAdd")
	if err != nil {
		b.Fatal(err)
	}
	for _, codec := range []ipc.CodecKind{ipc.CodecGob, ipc.CodecBinary} {
		b.Run(codec.String(), func(b *testing.B) {
			svc := core.NewService(core.DefaultOptions())
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := ipc.ServeWithHooks(l, svc.Handle, svc.RegisterVP, svc.DisconnectVP)
			defer srv.Close()

			app := func(v *vp.VP) error {
				defer v.Ctx.Close()
				w := bench.MakeWorkload(1)
				launch := bench.NewLaunch(w)
				launch.Bindings = map[string]devmem.Ptr{}
				for _, decl := range bench.Kernel.Bufs {
					ptr, err := v.Ctx.Malloc(w.BufBytes[decl.Name])
					if err != nil {
						return err
					}
					launch.Bindings[decl.Name] = ptr
				}
				out := bench.Kernel.Bufs[len(bench.Kernel.Bufs)-1].Name
				for it := 0; it < iters; it++ {
					for name, data := range w.Inputs {
						if err := v.Ctx.MemcpyH2D(launch.Bindings[name], data); err != nil {
							return err
						}
					}
					if err := v.Ctx.LaunchKernel(launch); err != nil {
						return err
					}
					if _, err := v.Ctx.MemcpyD2H(launch.Bindings[out], int(w.BufBytes[out])); err != nil {
						return err
					}
				}
				return nil
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fleet := &vp.Fleet{}
				clients := make([]ipc.Client, vps)
				for id := 0; id < vps; id++ {
					c, err := ipc.DialWithOptions(srv.Addr().String(), id, ipc.DialOptions{Codec: codec})
					if err != nil {
						b.Fatal(err)
					}
					clients[id] = c
					fleet.VPs = append(fleet.VPs,
						vp.New(id, arch.ARMVersatile(), cudart.NewContext(id, cudart.NewRemoteBackend(c))))
				}
				if err := fleet.Run(app); err != nil {
					b.Fatal(err)
				}
				for _, c := range clients {
					c.Close()
				}
			}
		})
	}
	// Keep the harness pool warm-path in scope for -workers parity with the
	// in-process Fig11 benchmark.
	_ = experiments.Workers
}
