package repro

import (
	"testing"

	"repro/internal/experiments"
)

// BenchmarkEstimationSweep regenerates the full-suite estimation sweep (the
// extended Fig. 12/13 study) — the heaviest harness after Fig. 11.
func BenchmarkEstimationSweep(b *testing.B) {
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.EstimationSweep(8)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MeanAbsC2, "mean-C2-error")
}
